// Package loadgen drives a running ataqcd daemon with configurable load:
// a fleet of concurrent clients at a target aggregate request rate, a
// deterministic mix of compile problems, client-side retry with jittered
// exponential backoff on 429/503, and an optional chaos arm that weaves the
// internal/faultinject network faults (truncated bodies, header stalls,
// malformed payloads, mid-request cancellations) into the request stream.
//
// Latency is recorded in internal/obs log-bucket histograms; Report
// extracts p50/p90/p99 by interpolating within buckets. cmd/ataqc-bench is
// the CLI wrapper that sweeps load levels and writes BENCH_service.json.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/faultinject"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/serve"
	"github.com/ata-pattern/ataqc/internal/telemetry"
)

// Config sizes one load level.
type Config struct {
	// URL is the daemon base URL, e.g. http://127.0.0.1:8080.
	URL string
	// Clients is the number of concurrent request loops (default 4).
	Clients int
	// RPS is the target aggregate arrival rate across all clients; 0 runs
	// closed-loop (each client fires as soon as the previous answer lands).
	RPS float64
	// Duration bounds the level (default 10s).
	Duration time.Duration
	// ChaosFraction is the probability that a slot becomes a hostile-client
	// scenario (faultinject.NetworkFaults) instead of a compile.
	ChaosFraction float64
	// Seed makes the problem mix, chaos schedule, and backoff jitter
	// reproducible.
	Seed int64
	// MaxRetries bounds the 429/503 retry loop per request (default 3).
	MaxRetries int
	// BaseBackoff is the first retry delay, doubled per attempt with
	// +-50% jitter (default 50ms).
	BaseBackoff time.Duration
	// Timeout caps one HTTP exchange (default 60s).
	Timeout time.Duration
	// Bodies, when non-empty, replaces the built-in problem mix: each
	// request samples one uniformly. WorkloadSpec.Configs builds these
	// from a declarative spec file.
	Bodies []string
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Quantiles summarizes a latency distribution in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// ChaosSummary reports the hostile-client arm of a level.
type ChaosSummary struct {
	// Sent counts chaos scenarios driven.
	Sent int64 `json:"sent"`
	// ContractViolations counts scenarios where the daemon answered an
	// error status without the structured JSON envelope. Must be zero.
	ContractViolations int64 `json:"contractViolations"`
	// Violated lists the offending scenario names (deduplicated).
	Violated []string `json:"violated,omitempty"`
}

// Report is the outcome of one load level.
type Report struct {
	TargetRPS   float64 `json:"targetRps"`
	AchievedRPS float64 `json:"achievedRps"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"durationSec"`
	// Sent counts compile attempts (retries of the same request are not
	// re-counted; chaos scenarios are counted under Chaos.Sent instead).
	Sent int64 `json:"sent"`
	// OK counts 200 answers; Degraded is the subset compiled on the
	// pressure ladder's lower rungs.
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	// Shed counts final 429/503 outcomes after the retry budget; Retries
	// counts individual retry attempts.
	Shed    int64 `json:"shed"`
	Retries int64 `json:"retries"`
	// Errors histograms every other final status ("status_500": n) plus
	// "transport" for connection-level failures.
	Errors map[string]int64 `json:"errors,omitempty"`
	// TraceIDViolations counts responses (any status, retries included)
	// that arrived without a well-formed X-Ataqc-Trace-Id header. The
	// telemetry contract says every response carries one, so the bench
	// gate fails on a non-zero count.
	TraceIDViolations int64 `json:"traceIdViolations"`
	// LatencyMs covers successful (2xx) exchanges only, measured
	// client-side including queue wait.
	LatencyMs Quantiles    `json:"latencyMs"`
	Chaos     ChaosSummary `json:"chaos"`
}

// Run drives one load level and reports it. The context aborts early.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	bodies := cfg.Bodies
	if len(bodies) == 0 {
		var err error
		if bodies, err = problemMix(); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	reg := obs.NewRegistry()
	var (
		wg         sync.WaitGroup
		violatedMu sync.Mutex
		violated   = map[string]bool{}
	)
	client := &http.Client{Timeout: cfg.Timeout}
	faults := faultinject.NetworkFaults()
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			var interval time.Duration
			if cfg.RPS > 0 {
				interval = time.Duration(float64(cfg.Clients) / cfg.RPS * float64(time.Second))
			}
			next := time.Now()
			for {
				if interval > 0 {
					d := time.Until(next)
					if d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
					next = next.Add(interval)
				}
				if ctx.Err() != nil {
					return
				}
				if cfg.ChaosFraction > 0 && rng.Float64() < cfg.ChaosFraction {
					f := faults[rng.Intn(len(faults))]
					rep := f.Run(ctx, strings.TrimSuffix(cfg.URL, "/"))
					reg.Counter("chaos.sent").Add(1)
					if !rep.Ok() {
						reg.Counter("chaos.violations").Add(1)
						violatedMu.Lock()
						violated[rep.Fault] = true
						violatedMu.Unlock()
					}
					continue
				}
				body := bodies[rng.Intn(len(bodies))]
				doRequest(ctx, client, cfg, rng, reg, body)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(reg, cfg, elapsed)
	violatedMu.Lock()
	for name := range violated {
		rep.Chaos.Violated = append(rep.Chaos.Violated, name)
	}
	violatedMu.Unlock()
	sort.Strings(rep.Chaos.Violated)
	return rep, nil
}

// doRequest sends one compile body, retrying 429/503 with jittered
// exponential backoff, and records the final outcome.
func doRequest(ctx context.Context, client *http.Client, cfg Config, rng *rand.Rand, reg *obs.Registry, body string) {
	reg.Counter("sent").Add(1)
	backoff := cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		start := time.Now()
		status, degraded, traceOK, err := postOnce(ctx, client, cfg.URL, body)
		elapsed := time.Since(start)
		if err == nil && !traceOK {
			reg.Counter("trace.violations").Add(1)
		}
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return // level over; do not count the abort as a failure
			}
			reg.Counter("transport").Add(1)
			return
		case status == http.StatusOK:
			reg.Counter("ok").Add(1)
			if degraded {
				reg.Counter("degraded").Add(1)
			}
			reg.Histogram("latency_us").Observe(elapsed.Microseconds())
			reg.Gauge("latency_max_us").Set(elapsed.Microseconds()) // Max tracks the high-water mark
			return
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			if attempt >= cfg.MaxRetries {
				reg.Counter("shed").Add(1)
				return
			}
			reg.Counter("retries").Add(1)
			// Full jitter around the exponential schedule: 0.5x..1.5x.
			sleep := time.Duration(float64(backoff) * (0.5 + rng.Float64()))
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return
			}
		default:
			reg.Counter(fmt.Sprintf("status_%d", status)).Add(1)
			return
		}
	}
}

// postOnce performs a single exchange, reporting the status, whether the
// answer was a degraded compile, and whether it carried a well-formed
// trace ID header (checked on EVERY status — the shed/error paths are
// exactly where a missing ID would go unnoticed).
func postOnce(ctx context.Context, client *http.Client, url, body string) (int, bool, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(url, "/")+"/compile", strings.NewReader(body))
	if err != nil {
		return 0, false, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, false, err
	}
	defer resp.Body.Close()
	traceOK := telemetry.TraceID(resp.Header.Get(telemetry.TraceHeader)).Valid()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return resp.StatusCode, false, traceOK, nil
	}
	var m struct {
		Degraded bool `json:"degraded"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m.Degraded, traceOK, nil
}

// problemMix builds the deterministic compile-request mix: small, medium,
// and large problems across two architectures, so one level exercises both
// fast and slow compiles.
func problemMix() ([]string, error) {
	specs := []struct {
		arch    string
		n       int
		density float64
		seed    int64
	}{
		{"grid", 9, 0.5, 1},
		{"grid", 16, 0.4, 2},
		{"grid", 25, 0.35, 3},
		{"heavy-hex", 12, 0.4, 4},
		{"heavy-hex", 20, 0.3, 5},
		{"grid", 36, 0.3, 6},
	}
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		prob := ataqc.RandomProblem(s.n, s.density, s.seed)
		b, err := json.Marshal(serve.CompileRequest{Arch: s.arch, Edges: prob.InteractionList()})
		if err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	return out, nil
}

// buildReport converts the registry into the level report.
func buildReport(reg *obs.Registry, cfg Config, elapsed time.Duration) *Report {
	snap := reg.Snapshot()
	rep := &Report{
		TargetRPS:         cfg.RPS,
		Clients:           cfg.Clients,
		DurationSec:       elapsed.Seconds(),
		Sent:              snap.Counters["sent"],
		OK:                snap.Counters["ok"],
		Degraded:          snap.Counters["degraded"],
		Shed:              snap.Counters["shed"],
		Retries:           snap.Counters["retries"],
		TraceIDViolations: snap.Counters["trace.violations"],
		Chaos: ChaosSummary{
			Sent:               snap.Counters["chaos.sent"],
			ContractViolations: snap.Counters["chaos.violations"],
		},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Sent+rep.Chaos.Sent) / elapsed.Seconds()
	}
	for name, n := range snap.Counters {
		if strings.HasPrefix(name, "status_") || name == "transport" {
			if rep.Errors == nil {
				rep.Errors = map[string]int64{}
			}
			rep.Errors[name] = n
		}
	}
	if h, ok := snap.Histograms["latency_us"]; ok {
		maxUs := snap.Gauges["latency_max_us"].Max
		rep.LatencyMs = Quantiles{
			P50: histQuantile(h, maxUs, 0.50) / 1e3,
			P90: histQuantile(h, maxUs, 0.90) / 1e3,
			P99: histQuantile(h, maxUs, 0.99) / 1e3,
			Max: float64(maxUs) / 1e3,
		}
	}
	return rep
}

// histQuantile estimates the q-quantile (in the histogram's native unit)
// from the log-bucket snapshot, interpolating linearly within the bucket
// that crosses the target rank; maxObserved bounds the unbounded tail
// bucket and caps every estimate.
func histQuantile(h obs.HistogramSnapshot, maxObserved int64, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum int64
	lower := float64(0)
	for _, b := range h.Buckets {
		upper := float64(b.Upper)
		if b.Upper < 0 || upper > float64(maxObserved) {
			upper = float64(maxObserved)
		}
		if float64(cum+b.Count) >= target {
			frac := (target - float64(cum)) / float64(b.Count)
			est := lower + frac*(upper-lower)
			if est < lower {
				est = lower
			}
			return est
		}
		cum += b.Count
		lower = upper + 1
	}
	return float64(maxObserved)
}
