package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/serve"
)

// WorkloadSpec is a declarative bench workload: the load levels to sweep
// and the problem mix to draw request bodies from, loaded from a small
// YAML subset (see ParseWorkload). cmd/ataqc-bench's -workload flag runs
// one, replacing its -rps/-clients/-duration/-chaos-fraction/-seed flags
// with the spec's values.
type WorkloadSpec struct {
	// Name labels the report.
	Name string
	// Seed drives body generation, sampling, and backoff jitter.
	Seed int64
	// ChaosFraction is the hostile-client probability per slot.
	ChaosFraction float64
	// Levels are swept in order.
	Levels []LevelSpec
	// Mix is the weighted problem pool request bodies are sampled from.
	Mix []MixSpec
}

// LevelSpec is one load level of a workload.
type LevelSpec struct {
	// RPS is the target aggregate rate (0 = closed loop).
	RPS float64
	// Duration bounds the level (0 = loadgen default).
	Duration time.Duration
	// Clients is the concurrent client count (0 = loadgen default).
	Clients int
}

// MixSpec is one weighted entry of the problem mix.
type MixSpec struct {
	// Arch names the target architecture family (as in CompileRequest).
	Arch string
	// N is the problem size in qubits.
	N int
	// Density is the Erdős–Rényi edge density.
	Density float64
	// Seed fixes the problem instance (same arch/n/density/seed = same
	// problem — the lever for building repeat-heavy, cache-friendly load).
	Seed int64
	// Weight is the entry's sampling multiplicity (default 1).
	Weight int
	// Relabel adds this many isomorphic variants (vertex-relabeled copies
	// of the same problem). They exercise the compilation cache's
	// canonical hashing: each variant is a distinct request body that a
	// canonicalizing cache recognizes as the same problem.
	Relabel int
}

// LoadWorkload reads a workload spec file (see ParseWorkload).
func LoadWorkload(path string) (*WorkloadSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ParseWorkload(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseWorkload parses a workload spec from a small YAML subset — the
// only YAML these specs need, hand-rolled so the tool stays free of
// external dependencies:
//
//	name: repeat-heavy          # top-level scalars
//	seed: 7
//	chaos_fraction: 0.1
//	levels:                     # lists of flat mappings
//	  - rps: 40
//	    duration: 8s
//	    clients: 8
//	mix:
//	  - arch: grid
//	    n: 16
//	    density: 0.4
//	    seed: 3
//	    weight: 4
//	    relabel: 2
//
// Comments (#), blank lines, and consistent space indentation are
// supported; tabs, nesting beyond one list of mappings, and flow syntax
// are not. Unknown keys are rejected so typos fail loudly.
func ParseWorkload(r io.Reader) (*WorkloadSpec, error) {
	doc, err := parseYAMLSubset(r)
	if err != nil {
		return nil, err
	}
	spec := &WorkloadSpec{}
	if err := doc.scalars(func(key, val string, line int) error {
		switch key {
		case "name":
			spec.Name = val
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: seed %q is not an integer", line, val)
			}
			spec.Seed = n
		case "chaos_fraction":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("line %d: chaos_fraction %q is not in [0,1]", line, val)
			}
			spec.ChaosFraction = f
		default:
			return fmt.Errorf("line %d: unknown key %q", line, key)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, item := range doc.items("levels") {
		lvl, err := item.level()
		if err != nil {
			return nil, err
		}
		spec.Levels = append(spec.Levels, lvl)
	}
	for _, item := range doc.items("mix") {
		mx, err := item.mix()
		if err != nil {
			return nil, err
		}
		spec.Mix = append(spec.Mix, mx)
	}
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("workload has no levels")
	}
	if len(spec.Mix) == 0 {
		return nil, fmt.Errorf("workload has no problem mix")
	}
	return spec, nil
}

// Bodies renders the mix into compile-request JSON bodies: each entry
// appears Weight times, and each of its Relabel isomorphic variants
// appears Weight times too. Sampling from the returned slice uniformly
// reproduces the spec's weights.
func (s *WorkloadSpec) Bodies() ([]string, error) {
	var out []string
	for i, m := range s.Mix {
		prob := ataqc.RandomProblem(m.N, m.Density, m.Seed)
		edges := prob.InteractionList()
		weight := m.Weight
		if weight <= 0 {
			weight = 1
		}
		variants := [][][2]int{edges}
		rng := rand.New(rand.NewSource(s.Seed ^ m.Seed ^ int64(i)<<32))
		for v := 0; v < m.Relabel; v++ {
			perm := rng.Perm(m.N)
			rel := make([][2]int, len(edges))
			for j, e := range edges {
				u, w := perm[e[0]], perm[e[1]]
				if u > w {
					u, w = w, u
				}
				rel[j] = [2]int{u, w}
			}
			// Sort so the body is deterministic regardless of the
			// permutation drawn; the served problem is identical either way.
			sort.Slice(rel, func(a, b int) bool {
				if rel[a][0] != rel[b][0] {
					return rel[a][0] < rel[b][0]
				}
				return rel[a][1] < rel[b][1]
			})
			variants = append(variants, rel)
		}
		for _, vs := range variants {
			b, err := json.Marshal(serve.CompileRequest{Arch: m.Arch, N: m.N, Edges: vs})
			if err != nil {
				return nil, err
			}
			for w := 0; w < weight; w++ {
				out = append(out, string(b))
			}
		}
	}
	return out, nil
}

// Configs expands the spec into one loadgen Config per level, rooted at
// url. Level i gets a distinct derived seed so its jitter and sampling
// do not correlate with its neighbors'.
func (s *WorkloadSpec) Configs(url string) ([]Config, error) {
	bodies, err := s.Bodies()
	if err != nil {
		return nil, err
	}
	out := make([]Config, len(s.Levels))
	for i, lvl := range s.Levels {
		out[i] = Config{
			URL:           url,
			Clients:       lvl.Clients,
			RPS:           lvl.RPS,
			Duration:      lvl.Duration,
			ChaosFraction: s.ChaosFraction,
			Seed:          s.Seed + int64(i)*104729,
			Bodies:        bodies,
		}
	}
	return out, nil
}

// --- YAML-subset machinery ---

// yamlDoc is the parsed shape: top-level scalars plus named lists of flat
// string maps, with source line numbers for error reporting.
type yamlDoc struct {
	scalarOrder []scalarEntry
	lists       map[string][]yamlItem
	listOrder   []string
}

type scalarEntry struct {
	key, val string
	line     int
}

type yamlItem struct {
	fields map[string]string
	lines  map[string]int
	line   int // the "- " line that opened the item
}

func (d *yamlDoc) scalars(fn func(key, val string, line int) error) error {
	for _, s := range d.scalarOrder {
		if err := fn(s.key, s.val, s.line); err != nil {
			return err
		}
	}
	return nil
}

func (d *yamlDoc) items(section string) []yamlItem { return d.lists[section] }

// take pops a field from the item, returning "" when absent.
func (it *yamlItem) take(key string) (string, int) {
	v, ok := it.fields[key]
	if !ok {
		return "", 0
	}
	delete(it.fields, key)
	return v, it.lines[key]
}

// leftovers reports unconsumed fields as a sorted list.
func (it *yamlItem) leftovers() []string {
	var keys []string
	//vet:ignore maprange collected keys are sorted before returning
	for k := range it.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (it yamlItem) level() (LevelSpec, error) {
	var lvl LevelSpec
	if v, line := it.take("rps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return lvl, fmt.Errorf("line %d: rps %q is not a non-negative number", line, v)
		}
		lvl.RPS = f
	}
	if v, line := it.take("duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return lvl, fmt.Errorf("line %d: duration %q is not a positive duration", line, v)
		}
		lvl.Duration = d
	}
	if v, line := it.take("clients"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return lvl, fmt.Errorf("line %d: clients %q is not a non-negative integer", line, v)
		}
		lvl.Clients = n
	}
	if left := it.leftovers(); len(left) > 0 {
		return lvl, fmt.Errorf("line %d: unknown level keys %v", it.line, left)
	}
	return lvl, nil
}

func (it yamlItem) mix() (MixSpec, error) {
	var m MixSpec
	arch, _ := it.take("arch")
	if arch == "" {
		return m, fmt.Errorf("line %d: mix entry needs an arch", it.line)
	}
	m.Arch = arch
	v, line := it.take("n")
	n, err := strconv.Atoi(v)
	if err != nil || n < 2 {
		return m, fmt.Errorf("line %d: mix entry needs n >= 2 (got %q)", max(line, it.line), v)
	}
	m.N = n
	v, line = it.take("density")
	den, err := strconv.ParseFloat(v, 64)
	if err != nil || den <= 0 || den > 1 {
		return m, fmt.Errorf("line %d: mix entry needs density in (0,1] (got %q)", max(line, it.line), v)
	}
	m.Density = den
	if v, line := it.take("seed"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return m, fmt.Errorf("line %d: seed %q is not an integer", line, v)
		}
		m.Seed = s
	}
	if v, line := it.take("weight"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil || w < 1 {
			return m, fmt.Errorf("line %d: weight %q is not a positive integer", line, v)
		}
		m.Weight = w
	}
	if v, line := it.take("relabel"); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil || r < 0 {
			return m, fmt.Errorf("line %d: relabel %q is not a non-negative integer", line, v)
		}
		m.Relabel = r
	}
	if left := it.leftovers(); len(left) > 0 {
		return m, fmt.Errorf("line %d: unknown mix keys %v", it.line, left)
	}
	return m, nil
}

// parseYAMLSubset does the line-level work: indentation state machine
// over "key: value" scalars, "section:" headers, and "- key: value" list
// items with indented continuation fields.
func parseYAMLSubset(r io.Reader) (*yamlDoc, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	doc := &yamlDoc{lists: map[string][]yamlItem{}}
	var (
		section  string // open list section ("" = top level)
		cur      *yamlItem
		curField int // indent of the open item's fields (-1 = unknown yet)
	)
	flush := func() {
		if cur != nil {
			doc.lists[section] = append(doc.lists[section], *cur)
			cur = nil
		}
	}
	for lineno, raw := range strings.Split(string(data), "\n") {
		line := lineno + 1
		text := stripComment(raw)
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.ContainsRune(text[:len(text)-len(strings.TrimLeft(text, " \t"))], '\t') {
			return nil, fmt.Errorf("line %d: indentation must use spaces, not tabs", line)
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		body := strings.TrimSpace(text)

		switch {
		case indent == 0:
			flush()
			key, val, ok := splitKV(body)
			if !ok {
				return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", line, body)
			}
			if val == "" {
				section = key
				if _, dup := doc.lists[section]; !dup {
					doc.lists[section] = nil
					doc.listOrder = append(doc.listOrder, section)
				}
			} else {
				section = ""
				doc.scalarOrder = append(doc.scalarOrder, scalarEntry{key: key, val: val, line: line})
			}
		case strings.HasPrefix(body, "-"):
			if section == "" {
				return nil, fmt.Errorf("line %d: list item outside a section", line)
			}
			flush()
			cur = &yamlItem{fields: map[string]string{}, lines: map[string]int{}, line: line}
			curField = -1
			rest := strings.TrimSpace(strings.TrimPrefix(body, "-"))
			if rest != "" {
				key, val, ok := splitKV(rest)
				if !ok || val == "" {
					return nil, fmt.Errorf("line %d: expected \"- key: value\", got %q", line, body)
				}
				cur.fields[key] = val
				cur.lines[key] = line
			}
		default:
			if cur == nil {
				return nil, fmt.Errorf("line %d: indented line outside a list item", line)
			}
			if curField == -1 {
				curField = indent
			} else if indent != curField {
				return nil, fmt.Errorf("line %d: inconsistent indentation (%d spaces, item uses %d)", line, indent, curField)
			}
			key, val, ok := splitKV(body)
			if !ok || val == "" {
				return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", line, body)
			}
			if _, dup := cur.fields[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate key %q in list item", line, key)
			}
			cur.fields[key] = val
			cur.lines[key] = line
		}
	}
	flush()
	for _, name := range doc.listOrder {
		if name != "levels" && name != "mix" {
			return nil, fmt.Errorf("unknown section %q", name)
		}
	}
	return doc, nil
}

// stripComment removes a trailing "#" comment. These specs carry no
// quoted strings, so a '#' at line start or after whitespace always
// opens a comment.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
			return line[:i]
		}
	}
	return line
}

// splitKV splits "key: value" (value may be empty for section headers).
func splitKV(s string) (key, val string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
}
