package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/serve"
)

// TestRunClosedLoop drives a short closed-loop level with a chaos arm
// against a live serving stack and checks the report adds up.
func TestRunClosedLoop(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:           ts.URL,
		Clients:       4,
		Duration:      2 * time.Second,
		ChaosFraction: 0.25,
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no successful traffic: %+v", rep)
	}
	if rep.Chaos.Sent == 0 {
		t.Fatalf("chaos arm never fired: %+v", rep)
	}
	if rep.Chaos.ContractViolations > 0 {
		t.Fatalf("daemon violated the chaos contract: %+v", rep.Chaos)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep.LatencyMs)
	}
	if rep.LatencyMs.Max < rep.LatencyMs.P99 {
		t.Fatalf("max below p99: %+v", rep.LatencyMs)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps not computed: %+v", rep)
	}
}

// TestHistQuantile pins the bucket-interpolation math on a hand-built
// snapshot: 100 observations, 50 in (64,128], 49 in (128,256], 1 in the
// tail.
func TestHistQuantile(t *testing.T) {
	h := obs.HistogramSnapshot{
		Count: 100,
		Buckets: []obs.BucketCount{
			{Upper: 128, Count: 50},
			{Upper: 256, Count: 49},
			{Upper: 1024, Count: 1},
		},
	}
	if p50 := histQuantile(h, 900, 0.50); p50 < 1 || p50 > 128 {
		t.Fatalf("p50 = %g, want within the first bucket", p50)
	}
	if p90 := histQuantile(h, 900, 0.90); p90 <= 128 || p90 > 256 {
		t.Fatalf("p90 = %g, want within (128,256]", p90)
	}
	// The tail bucket is clamped to the observed max, not its nominal edge.
	if p100 := histQuantile(h, 900, 1.0); p100 > 900 {
		t.Fatalf("p100 = %g, want <= observed max 900", p100)
	}
	if q := histQuantile(obs.HistogramSnapshot{}, 0, 0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}
