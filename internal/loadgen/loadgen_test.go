package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/serve"
)

// TestRunClosedLoop drives a short closed-loop level with a chaos arm
// against a live serving stack and checks the report adds up.
func TestRunClosedLoop(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:           ts.URL,
		Clients:       4,
		Duration:      2 * time.Second,
		ChaosFraction: 0.25,
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no successful traffic: %+v", rep)
	}
	if rep.Chaos.Sent == 0 {
		t.Fatalf("chaos arm never fired: %+v", rep)
	}
	if rep.Chaos.ContractViolations > 0 {
		t.Fatalf("daemon violated the chaos contract: %+v", rep.Chaos)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep.LatencyMs)
	}
	if rep.LatencyMs.Max < rep.LatencyMs.P99 {
		t.Fatalf("max below p99: %+v", rep.LatencyMs)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps not computed: %+v", rep)
	}
}

// TestHistQuantile pins the bucket-interpolation math on a hand-built
// snapshot: 100 observations, 50 in (64,128], 49 in (128,256], 1 in the
// tail.
func TestHistQuantile(t *testing.T) {
	h := obs.HistogramSnapshot{
		Count: 100,
		Buckets: []obs.BucketCount{
			{Upper: 128, Count: 50},
			{Upper: 256, Count: 49},
			{Upper: 1024, Count: 1},
		},
	}
	if p50 := histQuantile(h, 900, 0.50); p50 < 1 || p50 > 128 {
		t.Fatalf("p50 = %g, want within the first bucket", p50)
	}
	if p90 := histQuantile(h, 900, 0.90); p90 <= 128 || p90 > 256 {
		t.Fatalf("p90 = %g, want within (128,256]", p90)
	}
	// The tail bucket is clamped to the observed max, not its nominal edge.
	if p100 := histQuantile(h, 900, 1.0); p100 > 900 {
		t.Fatalf("p100 = %g, want <= observed max 900", p100)
	}
	if q := histQuantile(obs.HistogramSnapshot{}, 0, 0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

// TestHistQuantileEdgeCases pins the interpolation's degenerate shapes:
// empty histograms, a single populated bucket, and a p99 that lands in the
// unbounded overflow bucket (Upper < 0), which must clamp to the observed
// maximum instead of extrapolating to infinity.
func TestHistQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0 regardless of maxObserved.
	empty := obs.HistogramSnapshot{}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := histQuantile(empty, 12345, q); got != 0 {
			t.Fatalf("empty histogram q=%g = %g, want 0", q, got)
		}
	}

	// Single bucket (0,128] with 4 observations: quantiles interpolate
	// linearly from the bucket's lower edge. Ranks 1 and 2 of 4 land at
	// exactly 1/4 and 1/2 of the bucket width.
	single := obs.HistogramSnapshot{
		Count:   4,
		Buckets: []obs.BucketCount{{Upper: 128, Count: 4}},
	}
	if got := histQuantile(single, 128, 0.25); got != 32 {
		t.Fatalf("single-bucket p25 = %g, want 32", got)
	}
	if got := histQuantile(single, 128, 0.50); got != 64 {
		t.Fatalf("single-bucket p50 = %g, want 64", got)
	}
	if got := histQuantile(single, 128, 1); got != 128 {
		t.Fatalf("single-bucket p100 = %g, want 128", got)
	}

	// p99 in the overflow bucket: 95 observations in (0,64], 5 in the
	// unbounded tail, observed max 500. The tail's upper edge must clamp
	// to 500, putting the estimate at lower + 0.8*(500-65) = 413.
	overflow := obs.HistogramSnapshot{
		Count: 100,
		Buckets: []obs.BucketCount{
			{Upper: 64, Count: 95},
			{Upper: -1, Count: 5},
		},
	}
	p99 := histQuantile(overflow, 500, 0.99)
	if p99 <= 64 || p99 > 500 {
		t.Fatalf("overflow p99 = %g, want within (64, 500]", p99)
	}
	if p99 < 412 || p99 > 414 {
		t.Fatalf("overflow p99 = %g, want ~413 (linear within the clamped tail)", p99)
	}
	if got := histQuantile(overflow, 500, 1); got != 500 {
		t.Fatalf("overflow p100 = %g, want clamped max 500", got)
	}
}
