package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// norm returns the state's squared norm.
func norm(s *Statevector) float64 {
	t := 0.0
	for _, a := range s.Amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// TestUnitarityProperty: random gate sequences preserve the norm.
func TestUnitarityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := NewZero(n)
		for i := 0; i < 40; i++ {
			q := rng.Intn(n)
			p := rng.Intn(n)
			for p == q {
				p = rng.Intn(n)
			}
			switch rng.Intn(7) {
			case 0:
				s.H(q)
			case 1:
				s.RX(q, rng.Float64()*6)
			case 2:
				s.RZ(q, rng.Float64()*6)
			case 3:
				s.CX(p, q)
			case 4:
				s.Swap(p, q)
			case 5:
				s.ZZ(p, q, rng.Float64()*6)
			case 6:
				s.X(q)
			}
		}
		return math.Abs(norm(s)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGateAlgebraIdentities checks textbook identities numerically.
func TestGateAlgebraIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// SWAP = CX(a,b) CX(b,a) CX(a,b).
	a := randomState(rng, 2)
	b := a.Clone()
	a.Swap(0, 1)
	b.CX(0, 1)
	b.CX(1, 0)
	b.CX(0, 1)
	stateEquivalent(t, a, b, "swap = 3 cx")

	// H X H = Z.
	a = randomState(rng, 1)
	b = a.Clone()
	a.H(0)
	a.X(0)
	a.H(0)
	b.Z(0)
	stateEquivalent(t, a, b, "HXH = Z")

	// RZ(theta1) RZ(theta2) = RZ(theta1+theta2).
	a = randomState(rng, 1)
	b = a.Clone()
	a.RZ(0, 0.4)
	a.RZ(0, 0.9)
	b.RZ(0, 1.3)
	stateEquivalent(t, a, b, "RZ additivity")

	// ZZ is symmetric in its qubits.
	a = randomState(rng, 2)
	b = a.Clone()
	a.ZZ(0, 1, 0.7)
	b.ZZ(1, 0, 0.7)
	stateEquivalent(t, a, b, "ZZ symmetry")

	// ZZ commutes with SWAP on the same pair.
	a = randomState(rng, 2)
	b = a.Clone()
	a.ZZ(0, 1, 0.7)
	a.Swap(0, 1)
	b.Swap(0, 1)
	b.ZZ(0, 1, 0.7)
	stateEquivalent(t, a, b, "ZZ/SWAP commute")
}

// TestZZGatesCommuteProperty: any permutation of a set of ZZ gates yields
// the same state — the property the whole compiler rests on (§2.1).
func TestZZGatesCommuteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		var gates []circuit.Gate
		for i := 0; i < 8; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			gates = append(gates, circuit.NewZZ(u, v, rng.Float64()*3, graph.NewEdge(u, v)))
		}
		if len(gates) < 2 {
			return true
		}
		s1 := randomState(rng, n)
		s2 := s1.Clone()
		for _, g := range gates {
			s1.Apply(g)
		}
		perm := rng.Perm(len(gates))
		for _, i := range perm {
			s2.Apply(gates[i])
		}
		return math.Abs(s1.InnerAbs2(s2)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestReadoutPreservesNormalisation: the readout convolution keeps the
// distribution normalised for random error rates.
func TestReadoutPreservesNormalisation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := randomState(rng, n)
		probs := s.Probabilities()
		nm := noiseWithReadout(n, rng)
		out := applyReadout(probs, nm, n)
		sum := 0.0
		for _, p := range out {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTVDMetricProperties: TVD is a metric on distributions (symmetry,
// identity, triangle inequality) for random distributions.
func TestTVDMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(12)
		p := randomDist(rng, k)
		q := randomDist(rng, k)
		r := randomDist(rng, k)
		dpq, dqp := TVD(p, q), TVD(q, p)
		if math.Abs(dpq-dqp) > 1e-12 {
			return false
		}
		if TVD(p, p) != 0 {
			return false
		}
		if dpq < 0 || dpq > 1+1e-12 {
			return false
		}
		return TVD(p, r) <= dpq+TVD(q, r)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomDist(rng *rand.Rand, k int) []float64 {
	d := make([]float64, k)
	sum := 0.0
	for i := range d {
		d[i] = rng.Float64()
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// noiseWithReadout builds a model with only readout errors.
func noiseWithReadout(n int, rng *rand.Rand) *noise.Model {
	m := noise.Ideal(arch.Line(n))
	for q := range m.Readout {
		m.Readout[q] = rng.Float64() * 0.2
	}
	return m
}
