package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

const eps = 1e-9

func TestHadamardUniform(t *testing.T) {
	s := NewZero(1)
	s.H(0)
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > eps || math.Abs(p[1]-0.5) > eps {
		t.Fatalf("H|0> probs %v", p)
	}
}

func TestBellState(t *testing.T) {
	s := NewZero(2)
	s.H(0)
	s.CX(0, 1)
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > eps || math.Abs(p[3]-0.5) > eps || p[1] > eps || p[2] > eps {
		t.Fatalf("bell probs %v", p)
	}
}

func TestXYZBasics(t *testing.T) {
	s := NewZero(2)
	s.X(1)
	if p := s.Probabilities(); math.Abs(p[2]-1) > eps {
		t.Fatalf("X: %v", p)
	}
	s = NewZero(1)
	s.H(0)
	s.Z(0)
	s.H(0)
	if p := s.Probabilities(); math.Abs(p[1]-1) > eps {
		t.Fatalf("HZH != X: %v", p)
	}
	s = NewZero(1)
	s.Y(0)
	if p := s.Probabilities(); math.Abs(p[1]-1) > eps {
		t.Fatalf("Y|0>: %v", p)
	}
}

func TestSwapMovesAmplitude(t *testing.T) {
	s := NewZero(3)
	s.X(0)
	s.Swap(0, 2)
	p := s.Probabilities()
	if math.Abs(p[4]-1) > eps {
		t.Fatalf("swap probs %v", p)
	}
}

func TestRXRotation(t *testing.T) {
	s := NewZero(1)
	s.RX(0, math.Pi)
	p := s.Probabilities()
	if math.Abs(p[1]-1) > eps {
		t.Fatalf("RX(pi) = %v", p)
	}
}

func TestRZPhaseInvisibleInZBasis(t *testing.T) {
	s := NewZero(1)
	s.H(0)
	s.RZ(0, 0.7)
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > eps {
		t.Fatalf("RZ changed Z-basis probs: %v", p)
	}
}

// stateEquivalent checks |<a|b>|^2 == 1 (equal up to global phase).
func stateEquivalent(t *testing.T, a, b *Statevector, label string) {
	t.Helper()
	if f := a.InnerAbs2(b); math.Abs(f-1) > 1e-9 {
		t.Fatalf("%s: fidelity %v", label, f)
	}
}

func TestZZDecompositionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		theta := rng.Float64()*4 - 2
		c := circuit.New(2)
		c.Append(circuit.NewZZ(0, 1, theta, graph.NewEdge(0, 1)))
		a := randomState(rng, 2)
		b := a.Clone()
		a.Run(c)
		b.Run(c.Decompose())
		stateEquivalent(t, a, b, "ZZ vs CX-RZ-CX")
	}
}

func TestZZSwapDecompositionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		theta := rng.Float64()*4 - 2
		c := circuit.New(2)
		c.Append(circuit.Gate{Kind: circuit.GateZZSwap, Q0: 0, Q1: 1, Angle: theta})
		a := randomState(rng, 2)
		b := a.Clone()
		a.Run(c)
		b.Run(c.Decompose())
		stateEquivalent(t, a, b, "ZZSwap vs 3-CX template")
	}
}

func TestSwapDecompositionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := circuit.New(2)
	c.Append(circuit.NewSwap(0, 1))
	a := randomState(rng, 2)
	b := a.Clone()
	a.Run(c)
	b.Run(c.Decompose())
	stateEquivalent(t, a, b, "SWAP vs 3 CX")
}

// randomState prepares a pseudo-random product-ish state via rotations.
func randomState(rng *rand.Rand, n int) *Statevector {
	s := NewZero(n)
	for q := 0; q < n; q++ {
		s.H(q)
		s.RZ(q, rng.Float64()*6)
		s.RX(q, rng.Float64()*6)
	}
	return s
}

// logicalMarginal extracts the logical-basis distribution from a physical
// distribution given the final logical-to-physical mapping.
func logicalMarginal(probs []float64, l2p []int, nLogical int) []float64 {
	out := make([]float64, 1<<uint(nLogical))
	for basis, p := range probs {
		if p == 0 {
			continue
		}
		idx := 0
		for l := 0; l < nLogical; l++ {
			if basis&(1<<uint(l2p[l])) != 0 {
				idx |= 1 << uint(l)
			}
		}
		out[idx] += p
	}
	return out
}

// TestCompiledCircuitSemantics is the end-to-end oracle for the whole
// compiler: the compiled physical circuit, started from |+>^N and read out
// through the final mapping, must induce exactly the same logical
// distribution as the uncompiled logical circuit.
func TestCompiledCircuitSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	archs := []*arch.Arch{arch.Line(8), arch.Grid(3, 3), arch.Sycamore(3, 3), arch.Mumbai()}
	for _, a := range archs {
		n := 7
		p := graph.GnpConnected(n, 0.4, rng)
		for _, mode := range []core.Mode{core.ModeGreedy, core.ModeATA, core.ModeHybrid} {
			if mode != core.ModeGreedy && a.N() > 12 {
				// Mumbai's 27 physical qubits exceed the statevector cap;
				// only simulate compact architectures for ATA/hybrid.
				if a.N() > MaxQubits {
					continue
				}
			}
			if a.N() > 12 {
				continue // keep the test fast; Mumbai covered by greedy sizes below
			}
			res, err := core.Compile(a, p, core.Options{Mode: mode, Angle: 0.9})
			if err != nil {
				t.Fatalf("%s/%v: %v", a.Name, mode, err)
			}
			// Logical reference.
			ref := NewZero(n)
			for q := 0; q < n; q++ {
				ref.H(q)
			}
			for _, e := range p.Edges() {
				ref.ZZ(e.U, e.V, 0.9)
			}
			refProbs := ref.Probabilities()

			// Physical run.
			phys := NewZero(a.N())
			for q := 0; q < a.N(); q++ {
				phys.H(q)
			}
			phys.Run(res.Circuit)
			final := circuit.FinalMapping(res.Circuit, res.Initial)
			got := logicalMarginal(phys.Probabilities(), final, n)

			for i := range refProbs {
				if math.Abs(refProbs[i]-got[i]) > 1e-7 {
					t.Fatalf("%s/%v: distribution mismatch at basis %d: %v vs %v",
						a.Name, mode, i, refProbs[i], got[i])
				}
			}
		}
	}
}

func TestTVDProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0, 0}
	q := []float64{0, 0, 0.5, 0.5}
	if d := TVD(p, p); d != 0 {
		t.Fatalf("TVD(p,p) = %v", d)
	}
	if d := TVD(p, q); math.Abs(d-1) > eps {
		t.Fatalf("disjoint TVD = %v", d)
	}
}

func TestNoisyZeroNoiseMatchesExact(t *testing.T) {
	a := arch.Line(4)
	nm := noise.Ideal(a)
	c := circuit.New(4)
	c.Append(
		circuit.Gate{Kind: circuit.GateH, Q0: 0, Q1: -1},
		circuit.Gate{Kind: circuit.GateCNOT, Q0: 0, Q1: 1},
		circuit.NewZZ(1, 2, 0.5, graph.NewEdge(1, 2)),
	)
	rng := rand.New(rand.NewSource(5))
	noisy := NoisyProbabilities(c, nm, NoisyOptions{Trajectories: 3}, rng)
	s := NewZero(4)
	s.Run(c)
	exact := s.Probabilities()
	if d := TVD(noisy, exact); d > 1e-9 {
		t.Fatalf("zero-noise TVD %v", d)
	}
}

func TestNoisyDegradesWithNoise(t *testing.T) {
	a := arch.Line(4)
	nm := noise.Uniform(a, 0.05, 1e-3, 0.02, 1e-3)
	c := circuit.New(4)
	for i := 0; i < 4; i++ {
		c.Append(circuit.Gate{Kind: circuit.GateH, Q0: i, Q1: -1})
	}
	for i := 0; i+1 < 4; i++ {
		c.Append(circuit.NewZZ(i, i+1, 0.8, graph.NewEdge(i, i+1)))
	}
	// Mixer layer: without it the distribution is uniform (phases only)
	// and depolarizing noise would be invisible in the Z basis.
	for i := 0; i < 4; i++ {
		c.Append(circuit.Gate{Kind: circuit.GateRX, Q0: i, Q1: -1, Angle: 1.1})
	}
	s := NewZero(4)
	s.Run(c)
	exact := s.Probabilities()
	rng := rand.New(rand.NewSource(9))
	noisy := NoisyProbabilities(c, nm, NoisyOptions{Trajectories: 64, Readout: true}, rng)
	d := TVD(noisy, exact)
	if d <= 0.01 {
		t.Fatalf("noise produced TVD %v, expected > 0.01", d)
	}
	sum := 0.0
	for _, v := range noisy {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("noisy distribution sums to %v", sum)
	}
}

func TestSampleCountsConverges(t *testing.T) {
	probs := []float64{0.25, 0.75}
	rng := rand.New(rand.NewSource(13))
	counts := SampleCounts(probs, 20000, rng)
	dist := CountsToDistribution(counts, 2, 20000)
	if math.Abs(dist[1]-0.75) > 0.02 {
		t.Fatalf("sampled %v", dist)
	}
}

func TestDiagonalExpectation(t *testing.T) {
	probs := []float64{0.5, 0, 0, 0.5}
	v := DiagonalExpectation(probs, func(b int) float64 {
		// popcount
		c := 0
		for x := b; x != 0; x >>= 1 {
			c += x & 1
		}
		return float64(c)
	})
	if math.Abs(v-1) > eps {
		t.Fatalf("expectation %v", v)
	}
}

func TestNewZeroBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized statevector accepted")
		}
	}()
	NewZero(MaxQubits + 1)
}
