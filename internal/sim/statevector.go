// Package sim provides a statevector quantum simulator for validating
// compiled circuits and running the end-to-end experiments (§7.4): exact
// simulation up to ~22 qubits, Monte-Carlo Pauli-error trajectories under a
// noise model, measurement sampling with readout error, and total variation
// distance (TVD).
//
// Substitution note (DESIGN.md): this simulator plus the synthetic
// calibration stands in for the paper's IBM Mumbai runs.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/ata-pattern/ataqc/internal/circuit"
)

// MaxQubits bounds statevector size (2^22 amplitudes = 64 MiB).
const MaxQubits = 22

// Statevector is a pure state over n qubits; basis index bit q is qubit q.
type Statevector struct {
	N   int
	Amp []complex128
}

// NewZero returns |0...0> on n qubits.
func NewZero(n int) *Statevector {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("sim: %d qubits out of range [1,%d]", n, MaxQubits))
	}
	s := &Statevector{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// Clone returns a deep copy.
func (s *Statevector) Clone() *Statevector {
	c := &Statevector{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(c.Amp, s.Amp)
	return c
}

// apply1Q applies the 2x2 matrix {{a,b},{c,d}} to qubit q.
func (s *Statevector) apply1Q(q int, a, b, c, d complex128) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.Amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		x, y := s.Amp[i], s.Amp[j]
		s.Amp[i] = a*x + b*y
		s.Amp[j] = c*x + d*y
	}
}

// H applies a Hadamard to qubit q.
func (s *Statevector) H(q int) {
	r := complex(1/math.Sqrt2, 0)
	s.apply1Q(q, r, r, r, -r)
}

// X applies a Pauli-X to qubit q.
func (s *Statevector) X(q int) { s.apply1Q(q, 0, 1, 1, 0) }

// Y applies a Pauli-Y to qubit q.
func (s *Statevector) Y(q int) { s.apply1Q(q, 0, complex(0, -1), complex(0, 1), 0) }

// Z applies a Pauli-Z to qubit q.
func (s *Statevector) Z(q int) { s.apply1Q(q, 1, 0, 0, -1) }

// RX applies exp(-i theta/2 X) to qubit q.
func (s *Statevector) RX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	is := complex(0, -math.Sin(theta/2))
	s.apply1Q(q, c, is, is, c)
}

// RZ applies exp(-i theta/2 Z) to qubit q.
func (s *Statevector) RZ(q int, theta float64) {
	e0 := cmplx.Exp(complex(0, -theta/2))
	e1 := cmplx.Exp(complex(0, theta/2))
	s.apply1Q(q, e0, 0, 0, e1)
}

// CX applies a CNOT with control c and target t.
func (s *Statevector) CX(c, t int) {
	cb, tb := 1<<uint(c), 1<<uint(t)
	for i := 0; i < len(s.Amp); i++ {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// Swap exchanges qubits p and q.
func (s *Statevector) Swap(p, q int) {
	pb, qb := 1<<uint(p), 1<<uint(q)
	for i := 0; i < len(s.Amp); i++ {
		if i&pb != 0 && i&qb == 0 {
			j := (i &^ pb) | qb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// ZZ applies exp(-i theta/2 Z⊗Z) on qubits p, q (the program gate).
func (s *Statevector) ZZ(p, q int, theta float64) {
	eSame := cmplx.Exp(complex(0, -theta/2)) // parity 0: |00>, |11>
	eDiff := cmplx.Exp(complex(0, theta/2))
	pb, qb := 1<<uint(p), 1<<uint(q)
	for i := 0; i < len(s.Amp); i++ {
		if (i&pb != 0) == (i&qb != 0) {
			s.Amp[i] *= eSame
		} else {
			s.Amp[i] *= eDiff
		}
	}
}

// Apply executes one circuit gate.
func (s *Statevector) Apply(g circuit.Gate) {
	switch g.Kind {
	case circuit.GateH:
		s.H(g.Q0)
	case circuit.GateRX:
		s.RX(g.Q0, g.Angle)
	case circuit.GateRZ:
		s.RZ(g.Q0, g.Angle)
	case circuit.GateZZ:
		s.ZZ(g.Q0, g.Q1, g.Angle)
	case circuit.GateCNOT:
		s.CX(g.Q0, g.Q1)
	case circuit.GateSwap:
		s.Swap(g.Q0, g.Q1)
	case circuit.GateZZSwap:
		s.ZZ(g.Q0, g.Q1, g.Angle)
		s.Swap(g.Q0, g.Q1)
	default:
		panic(fmt.Sprintf("sim: unknown gate kind %v", g.Kind))
	}
}

// Run executes the whole circuit.
func (s *Statevector) Run(c *circuit.Circuit) {
	for _, g := range c.Gates {
		s.Apply(g)
	}
}

// Probabilities returns |amp|^2 per basis state.
func (s *Statevector) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// InnerAbs2 returns |<s|o>|^2.
func (s *Statevector) InnerAbs2(o *Statevector) float64 {
	var acc complex128
	for i := range s.Amp {
		acc += cmplx.Conj(s.Amp[i]) * o.Amp[i]
	}
	return real(acc)*real(acc) + imag(acc)*imag(acc)
}

// TVD returns the total variation distance between two distributions.
func TVD(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("sim: TVD length mismatch")
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}

// DiagonalExpectation returns sum_i p_i * value(i): the expectation of a
// computational-basis-diagonal observable given basis probabilities.
func DiagonalExpectation(probs []float64, value func(basis int) float64) float64 {
	e := 0.0
	for i, p := range probs {
		if p > 0 {
			e += p * value(i)
		}
	}
	return e
}
