package sim

import (
	"math/rand"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// NoisyOptions configures Monte-Carlo trajectory simulation.
type NoisyOptions struct {
	// Trajectories is the number of Pauli-error samples averaged (default 16).
	Trajectories int
	// Readout applies per-qubit measurement flip errors to the returned
	// distribution when true.
	Readout bool
}

// NoisyProbabilities estimates the output distribution of c under the
// noise model by trajectory averaging: each trajectory runs the decomposed
// circuit and, after every CX, injects a uniformly random two-qubit Pauli
// with the link's error probability (depolarizing channel); idle
// decoherence is approximated by per-qubit phase flips with probability
// IdlePerCycle per circuit cycle.
func NoisyProbabilities(c *circuit.Circuit, nm *noise.Model, opts NoisyOptions, rng *rand.Rand) []float64 {
	d := c.Decompose()
	traj := opts.Trajectories
	if traj <= 0 {
		traj = 16
	}
	acc := make([]float64, 1<<uint(c.NQubits))
	depth := d.Depth()
	for t := 0; t < traj; t++ {
		s := NewZero(c.NQubits)
		for _, g := range d.Gates {
			s.Apply(g)
			if g.Kind == circuit.GateCNOT {
				if e := nm.EdgeError(g.Q0, g.Q1); e > 0 && rng.Float64() < e {
					injectPauli(s, g.Q0, rng)
					injectPauli(s, g.Q1, rng)
				}
			} else if nm.SingleQubit[g.Q0] > 0 && rng.Float64() < nm.SingleQubit[g.Q0] {
				injectPauli(s, g.Q0, rng)
			}
		}
		// Idle decoherence: dephasing proportional to circuit duration.
		if nm.IdlePerCycle > 0 {
			pFlip := 1 - pow1p(-nm.IdlePerCycle, depth)
			for q := 0; q < c.NQubits; q++ {
				if rng.Float64() < pFlip {
					s.Z(q)
				}
			}
		}
		probs := s.Probabilities()
		for i, p := range probs {
			acc[i] += p
		}
	}
	for i := range acc {
		acc[i] /= float64(traj)
	}
	if opts.Readout {
		acc = applyReadout(acc, nm, c.NQubits)
	}
	return acc
}

// injectPauli applies a uniformly random non-identity-biased Pauli (X, Y,
// or Z each with probability 1/4, identity otherwise) to qubit q.
func injectPauli(s *Statevector, q int, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		// identity
	case 1:
		s.X(q)
	case 2:
		s.Y(q)
	case 3:
		s.Z(q)
	}
}

// pow1p returns (1+x)^n for small x without drift.
func pow1p(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 1 + x
	}
	return r
}

// applyReadout convolves the distribution with independent per-qubit bit
// flips of probability Readout[q].
func applyReadout(p []float64, nm *noise.Model, n int) []float64 {
	cur := p
	for q := 0; q < n; q++ {
		e := nm.Readout[q]
		if e <= 0 {
			continue
		}
		next := make([]float64, len(cur))
		bit := 1 << uint(q)
		for i, v := range cur {
			next[i] += v * (1 - e)
			next[i^bit] += v * e
		}
		cur = next
	}
	return cur
}

// SampleCounts draws shots from a distribution.
func SampleCounts(probs []float64, shots int, rng *rand.Rand) map[int]int {
	// Cumulative distribution for binary search.
	cum := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	counts := make(map[int]int)
	for s := 0; s < shots; s++ {
		r := rng.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[lo]++
	}
	return counts
}

// CountsToDistribution normalises sampled counts back to a distribution
// over the same basis size.
func CountsToDistribution(counts map[int]int, size, shots int) []float64 {
	p := make([]float64, size)
	//vet:ignore maprange indexed writes into disjoint slots, order-independent
	for b, c := range counts {
		p[b] = float64(c) / float64(shots)
	}
	return p
}
