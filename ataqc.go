// Package ataqc is an architecture-regularity-aware compiler for quantum
// programs with permutable two-qubit operators (QAOA and 2-local
// Hamiltonian simulation), reproducing Jin et al., "Exploiting the Regular
// Structure of Modern Quantum Architectures for Compiling and Optimizing
// Programs with Permutable Operators" (ASPLOS 2023).
//
// The public API is small: build a Device (a coupling architecture,
// optionally with a noise calibration), a Problem (the interaction graph
// whose edges are the permutable gates), and Compile. The compiler combines
// a noise-aware greedy scheduler with structured all-to-all SWAP-network
// patterns derived from depth-optimal solutions of small sub-problems,
// guaranteeing linear worst-case depth while exploiting sparsity.
//
//	dev := ataqc.HeavyHexDevice(64)
//	prob := ataqc.RandomProblem(64, 0.3, 1)
//	res, err := ataqc.Compile(dev, prob, ataqc.Options{})
//	fmt.Println(res.Depth(), res.CXCount())
package ataqc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/baseline"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/qaoa"
	"github.com/ata-pattern/ataqc/internal/sim"
	"github.com/ata-pattern/ataqc/internal/solver"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// Device is a quantum architecture target, optionally calibrated with a
// noise model.
type Device struct {
	arch  *arch.Arch
	noise *noise.Model
}

// LineDevice returns a 1xN line architecture.
func LineDevice(n int) *Device { return &Device{arch: arch.Line(n)} }

// GridDevice returns a near-square 2D-grid architecture with >= n qubits.
func GridDevice(n int) *Device { return &Device{arch: arch.GridN(n)} }

// SycamoreDevice returns a near-square Google-Sycamore (rotated lattice)
// architecture with >= n qubits.
func SycamoreDevice(n int) *Device { return &Device{arch: arch.SycamoreN(n)} }

// HeavyHexDevice returns an IBM heavy-hex architecture with >= n qubits.
func HeavyHexDevice(n int) *Device { return &Device{arch: arch.HeavyHexN(n)} }

// HexagonDevice returns a honeycomb architecture with >= n qubits.
func HexagonDevice(n int) *Device { return &Device{arch: arch.HexagonN(n)} }

// MumbaiDevice returns the 27-qubit IBM Mumbai coupling map.
func MumbaiDevice() *Device { return &Device{arch: arch.Mumbai()} }

// WithSyntheticNoise attaches a seeded synthetic calibration (IBM-like
// error-rate magnitudes and variability) and returns the device.
func (d *Device) WithSyntheticNoise(seed int64) *Device {
	d.noise = noise.Synthetic(d.arch, seed)
	return d
}

// Qubits returns the number of physical qubits.
func (d *Device) Qubits() int { return d.arch.N() }

// Name returns the device's identifier, e.g. "heavyhex-4x16".
func (d *Device) Name() string { return d.arch.Name }

// Render returns a coarse ASCII picture of the device layout.
func (d *Device) Render() string { return d.arch.Render() }

// Couplings returns the physical coupling pairs.
func (d *Device) Couplings() [][2]int {
	es := d.arch.G.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Problem is an interaction graph: vertices are logical qubits, edges are
// the permutable two-qubit operators (QAOA cost terms or 2-local
// Hamiltonian couplings).
type Problem struct {
	g *graph.Graph
}

// NewProblem returns an empty problem over n logical qubits.
func NewProblem(n int) *Problem { return &Problem{g: graph.New(n)} }

// AddInteraction declares a two-qubit operator between logical qubits u, v.
func (p *Problem) AddInteraction(u, v int) { p.g.AddEdge(u, v) }

// Qubits returns the number of logical qubits.
func (p *Problem) Qubits() int { return p.g.N() }

// Interactions returns the number of two-qubit operators.
func (p *Problem) Interactions() int { return p.g.M() }

// InteractionList returns every two-qubit operator as a canonical (u < v)
// pair, sorted.
func (p *Problem) InteractionList() [][2]int {
	es := p.g.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// RandomProblem returns a connected Erdős–Rényi G(n, density) problem.
func RandomProblem(n int, density float64, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	return &Problem{g: graph.GnpConnected(n, density, rng)}
}

// MaxProblemQubits caps the vertex ids ParseProblem accepts: the problem
// spans vertices 0..max(id), so a single adversarial line ("0 1000000000")
// would otherwise allocate a billion-vertex graph before any compile
// sanity check runs.
const MaxProblemQubits = 1 << 20

// ParseProblem reads an interaction graph from an edge-list stream: one
// "u v" pair per line (0-based vertex ids); blank lines and lines starting
// with '#' are ignored. The problem spans vertices 0..max(id), capped at
// MaxProblemQubits.
func ParseProblem(r io.Reader) (*Problem, error) {
	var edges [][2]int
	maxV := -1
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("ataqc: line %d: %q is not an edge", line, text)
		}
		if u < 0 || v < 0 || u == v {
			return nil, fmt.Errorf("ataqc: line %d: invalid edge (%d,%d)", line, u, v)
		}
		if u >= MaxProblemQubits || v >= MaxProblemQubits {
			return nil, fmt.Errorf("ataqc: line %d: vertex id exceeds the %d-qubit limit", line, MaxProblemQubits)
		}
		edges = append(edges, [2]int{u, v})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxV < 0 {
		return nil, fmt.Errorf("ataqc: empty problem")
	}
	p := NewProblem(maxV + 1)
	for _, e := range edges {
		p.AddInteraction(e[0], e[1])
	}
	return p, nil
}

// LoadProblem reads an edge-list file (see ParseProblem).
func LoadProblem(path string) (*Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ParseProblem(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// RegularProblem returns a random regular problem with density close to the
// target.
func RegularProblem(n int, density float64, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.RegularByDensity(n, density, rng)
	if err != nil {
		return nil, err
	}
	return &Problem{g: g}, nil
}

// Strategy selects the compilation algorithm.
type Strategy string

const (
	// StrategyHybrid is the paper's full framework: greedy scheduling with
	// structured-pattern prediction and the compiled-circuit selector.
	StrategyHybrid Strategy = "hybrid"
	// StrategyGreedy is the pure greedy heuristic.
	StrategyGreedy Strategy = "greedy"
	// StrategyATA follows the structured all-to-all solution exactly,
	// skipping gates absent from the problem.
	StrategyATA Strategy = "ata"
	// Strategy2QAN, StrategyQAIM and StrategyPaulihedral are the baseline
	// reimplementations, exposed for comparison studies.
	Strategy2QAN        Strategy = "2qan"
	StrategyQAIM        Strategy = "qaim"
	StrategyPaulihedral Strategy = "paulihedral"
)

// Options configures Compile.
type Options struct {
	// Strategy defaults to StrategyHybrid.
	Strategy Strategy
	// NoiseAware uses the device's calibration for SWAP placement and the
	// selector's fidelity term (requires WithSyntheticNoise or a custom
	// model).
	NoiseAware bool
	// CrosstalkAware avoids scheduling close parallel gates together.
	CrosstalkAware bool
	// Alpha weighs depth vs fidelity in the circuit selector (default 0.5).
	Alpha float64
	// Angle is recorded on every program gate (default 1).
	Angle float64
	// Deadline is a wall-clock budget for the compilation (0 = unbounded).
	// When it expires mid-compile under the hybrid/greedy/ata strategies,
	// the compiler degrades to the structured ATA solution instead of
	// failing (Theorem 6.1's linear-depth floor); Result.Degraded reports
	// it. Baseline strategies (2qan, qaim, paulihedral) are not governed.
	Deadline time.Duration
	// MaxNodes is a deterministic work budget (0 = unbounded): greedy
	// scheduler cycles plus predicted ATA pattern cycles. Exhaustion
	// degrades exactly like a deadline.
	MaxNodes int
	// Workers bounds the concurrency of the hybrid strategy's prediction
	// loop (0 = runtime.GOMAXPROCS(0), 1 = serial). The compiled circuit is
	// identical for every worker count under an unbounded budget; workers
	// (and the pattern memoisation they enable) only change compile time.
	Workers int
	// Trace, when non-nil, records the compile's execution timeline and
	// metrics (see NewTrace). Nil disables tracing at ~zero cost and is the
	// default. Tracing never changes the compiled circuit.
	Trace *Trace
	// Cache, when non-nil, consults and feeds a compilation cache (see
	// OpenCache / MemoryCache) under the hybrid/greedy/ata strategies.
	// Caching never changes the compiled circuit: a hit is byte-for-byte
	// the result a fresh compile would produce (isomorphic problems get
	// the same circuit relabeled for their vertices) and is re-verified
	// before it is served. Baseline strategies ignore it.
	Cache *Cache
}

// Result is a compiled circuit with its measurements.
type Result struct {
	dev           *Device
	problem       *Problem
	circuit       *circuit.Circuit
	initial       []int
	final         []int
	metrics       core.Metrics
	strategy      Strategy
	angle         float64
	cacheTier     string
	degraded      bool
	degradeReason core.DegradeReason
	timeline      core.Timeline
}

// Compile schedules every interaction of the problem onto the device.
func Compile(dev *Device, p *Problem, opts Options) (*Result, error) {
	return CompileContext(context.Background(), dev, p, opts)
}

// CompileContext is Compile under resource governance: it honors the
// context's cancellation and deadline plus Options.Deadline/MaxNodes. When
// a budget runs out mid-compile the compiler degrades gracefully — the
// output falls back toward the structured all-to-all solution, which is
// deterministic, linear-depth (Theorem 6.1), and always constructible —
// and Result.Degraded reports what happened. Explicit cancellation aborts
// with the context's error instead. Internal compiler panics are converted
// into errors at this boundary; they never unwind into the caller.
func CompileContext(ctx context.Context, dev *Device, p *Problem, opts Options) (*Result, error) {
	if p.Qubits() > dev.Qubits() {
		return nil, fmt.Errorf("ataqc: problem needs %d qubits but device %s has %d",
			p.Qubits(), dev.Name(), dev.Qubits())
	}
	strategy := opts.Strategy
	if strategy == "" {
		strategy = StrategyHybrid
	}
	var nm *noise.Model
	if opts.NoiseAware {
		if dev.noise == nil {
			return nil, fmt.Errorf("ataqc: NoiseAware requires a device calibration (WithSyntheticNoise)")
		}
		nm = dev.noise
	}
	res := &Result{dev: dev, problem: p, strategy: strategy, angle: opts.Angle}
	if res.angle == 0 {
		// Every compiler (core modes and baselines) records angle 1 on its
		// program gates when none is given; remember the effective value so
		// Lint's sema analyzer pins terms to what was actually emitted.
		res.angle = 1
	}
	switch strategy {
	case StrategyHybrid, StrategyGreedy, StrategyATA:
		mode := core.ModeHybrid
		if strategy == StrategyGreedy {
			mode = core.ModeGreedy
		}
		if strategy == StrategyATA {
			mode = core.ModeATA
		}
		copts := core.Options{
			Mode:           mode,
			Noise:          nm,
			CrosstalkAware: opts.CrosstalkAware,
			Alpha:          opts.Alpha,
			Angle:          opts.Angle,
			Deadline:       opts.Deadline,
			MaxNodes:       opts.MaxNodes,
			Workers:        opts.Workers,
			Trace:          opts.Trace.inner(),
		}
		var inner *core.Cache
		if opts.Cache != nil {
			inner = opts.Cache.inner
		}
		r, err := core.CompileCached(ctx, dev.arch, p.g, copts, inner)
		if err != nil {
			return nil, err
		}
		res.circuit, res.initial, res.final, res.metrics = r.Circuit, r.Initial, r.Final, r.Metrics
		res.degraded, res.degradeReason = r.Degraded, r.DegradeReason
		res.timeline = r.Timeline
		res.cacheTier = r.Stats.CacheTier
	case Strategy2QAN, StrategyQAIM, StrategyPaulihedral:
		var (
			b   *baseline.Result
			err error
		)
		switch strategy {
		case Strategy2QAN:
			b, err = baseline.TwoQAN(dev.arch, p.g, opts.Angle)
		case StrategyQAIM:
			b, err = baseline.QAIM(dev.arch, p.g, opts.Angle)
		default:
			b, err = baseline.Paulihedral(dev.arch, p.g, opts.Angle)
		}
		if err != nil {
			return nil, err
		}
		res.circuit, res.initial, res.final = b.Circuit, b.Initial, b.Final
		res.metrics = core.Measure(b.Circuit, nm)
	default:
		return nil, fmt.Errorf("ataqc: unknown strategy %q", strategy)
	}
	return res, nil
}

// Degraded reports that a resource budget (context deadline,
// Options.Deadline, or Options.MaxNodes) ran out mid-compile and the
// compiler fell back toward the structured ATA solution. The circuit is
// complete and passes every error-severity verifier analyzer; it is just
// not the candidate an unbounded search would have picked.
func (r *Result) Degraded() bool { return r.degraded }

// DegradeReason describes which budget ran out and which fallback rung
// produced the circuit ("" when not degraded). DegradeDetail exposes the
// same breadcrumb structured.
func (r *Result) DegradeReason() string { return r.degradeReason.String() }

// CacheTier reports which compilation-cache tier served this result:
// "mem", "disk", or "" for a fresh (uncached or cache-miss) compile.
func (r *Result) CacheTier() string { return r.cacheTier }

// Depth returns the compiled circuit's critical-path length after
// decomposition into CX and single-qubit gates.
func (r *Result) Depth() int { return r.metrics.Depth }

// CXCount returns the total CX count after decomposition.
func (r *Result) CXCount() int { return r.metrics.CXCount }

// SwapCount returns the number of SWAPs inserted (unified gate+SWAPs count).
func (r *Result) SwapCount() int { return r.metrics.Swaps }

// EstimatedFidelity returns exp(log-fidelity) under the device calibration,
// or 1 when the compilation was not noise-aware.
func (r *Result) EstimatedFidelity() float64 {
	return math.Exp(r.metrics.LogFidelity)
}

// InitialMapping returns where each logical qubit starts on the device.
func (r *Result) InitialMapping() []int {
	out := make([]int, len(r.initial))
	copy(out, r.initial)
	return out
}

// FinalMapping returns where each logical qubit ends up. The compilers
// track this as they build (and the perm-soundness analyzer confirms it
// against the circuit's SWAPs); replaying is only a fallback.
func (r *Result) FinalMapping() []int {
	if r.final != nil {
		out := make([]int, len(r.final))
		copy(out, r.final)
		return out
	}
	return circuit.FinalMapping(r.circuit, r.initial)
}

// Diagnostic is one finding from the static circuit verifier: a named
// analyzer, a severity, the offending gate's index in the compiled stream
// (-1 for circuit-level findings), the gate's operands, and a
// human-readable message.
type Diagnostic struct {
	Analyzer string // e.g. "arch-conformance", "sema", "dead-swap"
	Severity string // "error" or "warning"
	Gate     int    // gate index; -1 = whole-circuit finding
	// Kind is the offending gate's mnemonic ("zz", "swap", ...); empty for
	// circuit-level findings.
	Kind string
	// Q0, Q1 are the gate's physical operands (Q1 = -1 for 1q gates; both
	// -1 for circuit-level findings).
	Q0, Q1 int
	// L0, L1 are the logical qubits resident on Q0/Q1 when the gate
	// executes (-1 when unknown).
	L0, L1  int
	Message string
}

func (d Diagnostic) String() string {
	v := verify.Diagnostic{
		Analyzer: d.Analyzer,
		Gate:     d.Gate,
		Kind:     d.Kind,
		Q0:       d.Q0, Q1: d.Q1,
		L0: d.L0, L1: d.L1,
		Message: d.Message,
	}
	if d.Severity == "warning" {
		v.Severity = verify.SeverityWarning
	}
	return v.String()
}

// AnalyzerStatus reports whether one analyzer actually ran during Lint.
// A skipped analyzer proves nothing about its invariant, so CI that diffs
// lint output should also diff the status list.
type AnalyzerStatus struct {
	Analyzer string // analyzer name
	Skipped  bool   // true when required context was missing
	Reason   string // which context was missing ("" when it ran)
}

// Lint runs every verification analyzer over the compiled circuit: coupling
// conformance, permutation soundness, interaction coverage, phase-polynomial
// semantic equivalence, depth consistency, and dead-SWAP detection. Compile
// already enforces the error-severity analyzers on every result, so a
// successful compilation can only yield warning-severity findings here.
func (r *Result) Lint() []Diagnostic {
	diags, _ := r.LintStatus()
	return diags
}

// LintStatus is Lint plus per-analyzer accounting: the second return lists
// every analyzer with a skipped marker for those whose required context was
// missing.
func (r *Result) LintStatus() ([]Diagnostic, []AnalyzerStatus) {
	pass := &verify.Pass{
		Circuit:       r.circuit,
		Arch:          r.dev.arch,
		Problem:       r.problem.g,
		Initial:       r.initial,
		Final:         r.final,
		ReportedDepth: r.metrics.Depth,
		CheckDepth:    true,
		Angle:         r.angle,
	}
	diags, statuses := verify.RunStatus(pass, verify.All...)
	var out []Diagnostic
	for _, d := range diags {
		out = append(out, Diagnostic{
			Analyzer: d.Analyzer,
			Severity: d.Severity.String(),
			Gate:     d.Gate,
			Kind:     d.Kind,
			Q0:       d.Q0, Q1: d.Q1,
			L0: d.L0, L1: d.L1,
			Message: d.Message,
		})
	}
	sts := make([]AnalyzerStatus, len(statuses))
	for i, s := range statuses {
		sts[i] = AnalyzerStatus{Analyzer: s.Name, Skipped: s.Skipped, Reason: s.Reason}
	}
	return out, sts
}

// WriteQASM emits the compiled circuit as OpenQASM 2.0.
func (r *Result) WriteQASM(w io.Writer) error { return r.circuit.WriteQASM(w) }

// WriteSchedule prints the compiled circuit cycle by cycle: one line per
// ASAP layer listing the operations scheduled in it.
func (r *Result) WriteSchedule(w io.Writer) error {
	for li, layer := range r.circuit.Layers() {
		if _, err := fmt.Fprintf(w, "cycle %3d:", li); err != nil {
			return err
		}
		for _, gi := range layer {
			g := r.circuit.Gates[gi]
			var err error
			switch g.Kind {
			case circuit.GateZZ:
				_, err = fmt.Fprintf(w, "  zz%v@(%d,%d)", g.Tag, g.Q0, g.Q1)
			case circuit.GateZZSwap:
				_, err = fmt.Fprintf(w, "  zzswap%v@(%d,%d)", g.Tag, g.Q0, g.Q1)
			case circuit.GateSwap:
				_, err = fmt.Fprintf(w, "  swap(%d,%d)", g.Q0, g.Q1)
			default:
				_, err = fmt.Fprintf(w, "  %s(q%d)", g.Kind, g.Q0)
			}
			if err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrotterQASM emits a first-order Trotterised evolution exp(-iHt) of
// the compiled 2-local schedule as OpenQASM 2.0: `steps` repetitions at
// angle t/steps, alternating forward and reversed replays so the qubit
// mapping returns home after every even step (see internal/qaoa).
func (r *Result) WriteTrotterQASM(steps int, totalTime float64, w io.Writer) error {
	if steps < 1 {
		return fmt.Errorf("ataqc: steps must be positive")
	}
	c := r.instance().BuildTrotterized(steps, totalTime/float64(steps))
	return c.WriteQASM(w)
}

// QAOAExpectation returns the exact expected MaxCut value of the QAOA(p=1)
// circuit built from this compilation at angles (gamma, beta). The active
// part of the circuit must fit the simulator (<= 22 touched qubits).
func (r *Result) QAOAExpectation(gamma, beta float64) float64 {
	inst := r.instance()
	return inst.Expectation(gamma, beta)
}

// OptimizeQAOA runs Nelder–Mead over (gamma, beta) for maxEvals circuit
// evaluations and returns the best angles and the best expected cut.
func (r *Result) OptimizeQAOA(maxEvals int) (gamma, beta, expectedCut float64) {
	inst := r.instance()
	f := func(x []float64) float64 { return -inst.Expectation(x[0], x[1]) }
	best, trace := qaoa.NelderMead(f, []float64{-0.4, 0.3}, maxEvals)
	return best[0], best[1], -trace[len(trace)-1]
}

// SimulateDistribution returns the exact logical output distribution of the
// QAOA(p=1) circuit at (gamma, beta).
func (r *Result) SimulateDistribution(gamma, beta float64) []float64 {
	return r.instance().LogicalDistribution(gamma, beta)
}

// NoisyDistribution returns the trajectory-averaged distribution under the
// device calibration (including readout error).
func (r *Result) NoisyDistribution(gamma, beta float64, trajectories int, seed int64) ([]float64, error) {
	if r.dev.noise == nil {
		return nil, fmt.Errorf("ataqc: device has no noise calibration")
	}
	rng := rand.New(rand.NewSource(seed))
	return r.instance().NoisyLogicalDistribution(gamma, beta, r.dev.noise,
		sim.NoisyOptions{Trajectories: trajectories}, rng), nil
}

// TVD returns the total variation distance between two distributions.
func TVD(p, q []float64) float64 { return sim.TVD(p, q) }

// OptimalDepth runs the depth-optimal A* solver (§4) on a small instance
// and returns the provably minimal schedule depth in solver cycles (every
// program gate and SWAP costs one cycle). The search is exponential: it is
// intended for the sub-problem instances the structured patterns are
// derived from (lines and ladders of up to ~8 qubits, problems of up to 64
// interactions). maxNodes bounds the search (0 = 4M node expansions,
// negative = unbounded); ErrSolverBudget is returned when it is exhausted.
func OptimalDepth(dev *Device, p *Problem, maxNodes int) (int, error) {
	return OptimalDepthContext(context.Background(), dev, p, maxNodes)
}

// OptimalDepthContext is OptimalDepth honoring a context: the A* expansion
// loop polls the context every ~1k node expansions, so cancellation or a
// deadline abandons the search promptly with the context's error.
func OptimalDepthContext(ctx context.Context, dev *Device, p *Problem, maxNodes int) (int, error) {
	res, err := solver.SolveContext(ctx, dev.arch, p.g, nil, solver.Options{MaxNodes: maxNodes})
	if errors.Is(err, solver.ErrSearchExhausted) {
		return 0, ErrSolverBudget
	}
	if err != nil {
		return 0, err
	}
	return res.Depth, nil
}

// ErrSolverBudget reports that OptimalDepth hit its node budget before
// proving an optimum.
var ErrSolverBudget = errors.New("ataqc: optimal-depth search budget exhausted")

func (r *Result) instance() *qaoa.Instance {
	return &qaoa.Instance{
		Problem:  r.problem.g,
		Compiled: r.circuit,
		Initial:  r.initial,
		NPhys:    r.dev.Qubits(),
	}
}
