package ataqc

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/core"
)

// Cache is a compilation cache shared across Compile calls: an in-memory
// LRU of compiled results, optionally backed by a persistent on-disk
// store, plus the structured-pattern geometry cache the hybrid strategy
// warms as it compiles. Attach one via Options.Cache.
//
// Results are keyed by (architecture fingerprint, canonical problem-graph
// hash, options digest): isomorphic problems share an entry, and a cached
// answer for the identical problem is byte-for-byte the circuit a fresh
// compile would produce. Every served entry is re-verified by the same
// error-severity analyzers a fresh compile must pass, so a corrupted
// cache costs time, never correctness. Degraded (budget-exhausted)
// results are never cached.
//
// A Cache is safe for concurrent use by any number of compiles.
type Cache struct {
	inner *core.Cache
	dir   string
}

// OpenCache opens (creating if needed) a persistent compilation cache
// rooted at dir, fronted by an in-memory LRU. maxBytes bounds the total
// bytes on disk (0 = unbounded); exceeding it evicts least-recently-used
// entries. A store left by a crash is recovered by rescan; damaged
// entries are silently dropped on first access.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	store, err := cachestore.Open(dir, maxBytes)
	if err != nil {
		return nil, fmt.Errorf("ataqc: open cache %s: %w", dir, err)
	}
	return &Cache{inner: core.NewCache(cachestore.NewTiered(store, 0)), dir: dir}, nil
}

// MemoryCache returns a process-lifetime compilation cache with no disk
// tier: results and warm pattern state are shared across compiles but
// vanish with the process.
func MemoryCache() *Cache {
	return &Cache{inner: core.NewCache(cachestore.NewTiered(nil, 0))}
}

// Dir returns the cache's on-disk root ("" for a memory-only cache).
func (c *Cache) Dir() string { return c.dir }

// Close flushes and closes the disk tier, if any. The cache must not be
// used after Close.
func (c *Cache) Close() error { return c.inner.Close() }

// CacheStats is a point-in-time snapshot of every cache layer.
type CacheStats struct {
	// MemHits / DiskHits / Misses count result lookups by the tier that
	// answered. Disk hits are promoted into memory.
	MemHits, DiskHits, Misses int64
	// Corrupt counts entries rejected at decode or re-verification
	// (each fell through to a fresh compile).
	Corrupt int64
	// PutFailures counts results the disk tier could not persist (the
	// memory tier still accepted them).
	PutFailures int64
	// Evictions counts disk entries displaced by the byte budget.
	Evictions int64
	// MemEntries / DiskEntries / DiskBytes size the two tiers.
	MemEntries  int
	DiskEntries int
	DiskBytes   int64
	// PatternHits / PatternMisses count structured-pattern geometry
	// lookups inside the hybrid prediction loop.
	PatternHits, PatternMisses int64
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() CacheStats {
	s := c.inner.Stats()
	return CacheStats{
		MemHits:       s.Result.MemHits,
		DiskHits:      s.Result.DiskHits,
		Misses:        s.Result.Misses,
		Corrupt:       s.Corrupt + s.Result.Disk.Corrupt,
		PutFailures:   s.PutFailures,
		Evictions:     s.Result.Disk.Evictions,
		MemEntries:    s.Result.MemEntries,
		DiskEntries:   s.Result.Disk.Entries,
		DiskBytes:     s.Result.Disk.Bytes,
		PatternHits:   s.Patterns.Hits,
		PatternMisses: s.Patterns.Misses,
	}
}
