package ataqc

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// CustomDevice wraps an arbitrary coupling list as a device. Irregular
// devices have no structured all-to-all pattern, so only StrategyGreedy and
// the baseline strategies apply; the regular-family constructors
// (HeavyHexDevice, SycamoreDevice, ...) unlock the full hybrid compiler.
func CustomDevice(name string, qubits int, couplings [][2]int) (*Device, error) {
	if qubits < 1 {
		return nil, fmt.Errorf("ataqc: device needs at least one qubit")
	}
	g := graph.New(qubits)
	for _, c := range couplings {
		if c[0] < 0 || c[0] >= qubits || c[1] < 0 || c[1] >= qubits || c[0] == c[1] {
			return nil, fmt.Errorf("ataqc: invalid coupling (%d,%d)", c[0], c[1])
		}
		g.AddEdge(c[0], c[1])
	}
	return &Device{arch: arch.Generic(name, g)}, nil
}

// Calibration mirrors the JSON calibration format: per-coupling two-qubit
// error rates plus per-qubit single-qubit and readout errors. Missing
// entries default to the median of the provided values (or zero when none
// are given).
type Calibration struct {
	// TwoQubit lists per-coupling CX error rates.
	TwoQubit []CouplingError `json:"twoQubit"`
	// SingleQubit and Readout are per-qubit error rates, indexed by qubit.
	SingleQubit []float64 `json:"singleQubit"`
	Readout     []float64 `json:"readout"`
	// IdlePerCycle is the per-qubit decoherence probability per circuit
	// cycle.
	IdlePerCycle float64 `json:"idlePerCycle"`
}

// CouplingError is one link's calibration entry.
type CouplingError struct {
	Q0    int     `json:"q0"`
	Q1    int     `json:"q1"`
	Error float64 `json:"error"`
}

// ParseCalibration decodes a JSON calibration.
func ParseCalibration(r io.Reader) (*Calibration, error) {
	var c Calibration
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("ataqc: calibration: %w", err)
	}
	return &c, nil
}

// validRate reports whether v is a usable error probability. The explicit
// NaN guard matters: NaN compares false to everything, so a bare
// `v < 0 || v >= 1` range check silently accepts it.
func validRate(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 && v < 1
}

// WithCalibration attaches a measured calibration to the device, replacing
// any synthetic one. Couplings missing from the calibration get the median
// of the provided two-qubit errors; a coupling calibrated to exactly zero
// error stays zero (presence is tracked, not inferred from the value).
// Every rate — two-qubit, single-qubit, readout, idle — must be a finite
// probability in [0,1); anything else (NaN, Inf, negative, >= 1) is
// rejected with an error, as are entries naming non-couplings,
// out-of-range qubits, and duplicate couplings.
func (d *Device) WithCalibration(c *Calibration) (*Device, error) {
	m := noise.Ideal(d.arch)
	var vals []float64
	present := make(map[graph.Edge]bool, len(c.TwoQubit))
	for _, ce := range c.TwoQubit {
		if ce.Q0 < 0 || ce.Q0 >= d.arch.N() || ce.Q1 < 0 || ce.Q1 >= d.arch.N() || !d.arch.G.HasEdge(ce.Q0, ce.Q1) {
			return nil, fmt.Errorf("ataqc: calibration names non-coupling (%d,%d)", ce.Q0, ce.Q1)
		}
		if !validRate(ce.Error) {
			return nil, fmt.Errorf("ataqc: two-qubit error rate %v on (%d,%d) is not a probability in [0,1)", ce.Error, ce.Q0, ce.Q1)
		}
		e := graph.NewEdge(ce.Q0, ce.Q1)
		if present[e] {
			return nil, fmt.Errorf("ataqc: calibration lists coupling (%d,%d) twice", ce.Q0, ce.Q1)
		}
		present[e] = true
		m.TwoQubit[e] = ce.Error
		vals = append(vals, ce.Error)
	}
	med := median(vals)
	for _, e := range d.arch.G.Edges() {
		if !present[e] {
			m.TwoQubit[e] = med
		}
	}
	if len(c.SingleQubit) > d.arch.N() {
		return nil, fmt.Errorf("ataqc: calibration lists %d single-qubit entries but %s has %d qubits",
			len(c.SingleQubit), d.arch.Name, d.arch.N())
	}
	for q, v := range c.SingleQubit {
		if !validRate(v) {
			return nil, fmt.Errorf("ataqc: single-qubit error rate %v on qubit %d is not a probability in [0,1)", v, q)
		}
		m.SingleQubit[q] = v
	}
	if len(c.Readout) > d.arch.N() {
		return nil, fmt.Errorf("ataqc: calibration lists %d readout entries but %s has %d qubits",
			len(c.Readout), d.arch.Name, d.arch.N())
	}
	for q, v := range c.Readout {
		if !validRate(v) {
			return nil, fmt.Errorf("ataqc: readout error rate %v on qubit %d is not a probability in [0,1)", v, q)
		}
		m.Readout[q] = v
	}
	if !validRate(c.IdlePerCycle) {
		return nil, fmt.Errorf("ataqc: idle-per-cycle rate %v is not a probability in [0,1)", c.IdlePerCycle)
	}
	m.IdlePerCycle = c.IdlePerCycle
	m.CrosstalkFactor = 1.5
	d.noise = m
	return d, nil
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
