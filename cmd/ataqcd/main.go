// Command ataqcd is the ataqc compile service: an HTTP/JSON daemon that
// accepts compile jobs (interaction graph + architecture + options) and runs
// them on a bounded worker pool with per-request deadlines.
//
// The serving layer (internal/serve) is built to stay alive under hostile
// load: arrivals beyond the queue bound are shed with 429, per-request
// panics become structured 500s, queue pressure tightens compile budgets so
// starved requests degrade to verifier-clean linear-depth circuits instead
// of erroring, and SIGINT/SIGTERM drain in-flight jobs under a deadline.
//
// Endpoints:
//
//	POST /compile   compile a problem (serve.CompileRequest JSON)
//	GET  /healthz   liveness (always 200 while the process runs)
//	GET  /readyz    readiness (503 while draining; SLO burn warnings)
//	GET  /statz     metrics snapshot (counters, gauges, histograms,
//	                SLO burn rates, flight-recorder stats)
//	GET  /metricsz  Prometheus text exposition of the same registry
//	GET  /debugz    flight recorder: recent + in-flight jobs with phase
//	                timelines; ?stream=sse|ndjson follows commits live
//
// Every response carries an X-Ataqc-Trace-Id header (echoed in JSON
// bodies); grep the daemon log or query debugz with it to follow one
// request end to end.
//
// Pair with cmd/ataqc-bench to load-test and chaos-test a running daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/serve"
	"github.com/ata-pattern/ataqc/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers  = flag.Int("workers", 0, "compile worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request compile ceiling")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight jobs on shutdown")
		maxBody  = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body cap in bytes")
		maxQubit = flag.Int("max-qubits", serve.DefaultMaxQubits, "per-request device/problem size cap")
		chaos    = flag.Bool("chaos", false, "honor request chaos directives (panic/sleep injection) for robustness testing")

		cacheDir   = flag.String("cache-dir", "", "persistent compilation-cache directory (empty = in-memory cache only)")
		cacheBytes = flag.Int64("cache-max-bytes", 0, "disk cache byte budget; LRU entries are evicted above it (0 = unbounded)")

		recSize    = flag.Int("recorder-size", 256, "flight-recorder ring capacity (completed requests debugz can replay)")
		sloWindow  = flag.Duration("slo-window", 5*time.Minute, "SLO rolling measurement window")
		sloLatency = flag.Duration("slo-latency", time.Second, "SLO latency objective: target fraction of successes must finish within this")
		sloLatPct  = flag.Float64("slo-latency-target", 0.99, "fraction of successful answers that must meet -slo-latency")
		sloErrPct  = flag.Float64("slo-error-target", 0.999, "fraction of requests that must not end in a 5xx")
		sloDegPct  = flag.Float64("slo-degrade-target", 0.9, "fraction of successful answers that must be full fidelity (undegraded)")
	)
	flag.Parse()
	// The daemon always compiles through a cache: memory-only by default
	// (repeat submissions of the same problem are served from RAM), plus a
	// persistent disk tier when -cache-dir is given so warm state survives
	// restarts and ataqc-warm precomputation pays off.
	var cache *ataqc.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = ataqc.OpenCache(*cacheDir, *cacheBytes); err != nil {
			fmt.Fprintf(os.Stderr, "ataqcd: %v\n", err)
			os.Exit(1)
		}
	} else {
		cache = ataqc.MemoryCache()
	}
	err := run(*addr, serve.Config{
		Cache:          cache,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		MaxBodyBytes:   *maxBody,
		MaxQubits:      *maxQubit,
		AllowChaos:     *chaos,
		RecorderSize:   *recSize,
		SLO: telemetry.SLOConfig{
			Window:        *sloWindow,
			Latency:       *sloLatency,
			LatencyTarget: *sloLatPct,
			ErrorTarget:   *sloErrPct,
			DegradeTarget: *sloDegPct,
		},
		Logf: log.Printf,
	})
	// Close after run returns (not deferred past os.Exit) so the disk
	// tier's index is flushed even on a failed run.
	if cerr := cache.Close(); cerr != nil {
		log.Printf("ataqcd: cache close: %v", cerr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ataqcd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config) error {
	srv := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// ReadHeaderTimeout bounds the slow-loris window: a client that
		// dribbles header bytes is cut off before it pins a connection.
		// Request bodies are already bounded by MaxBytesReader and the
		// compile deadline, so no blanket ReadTimeout is needed.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ataqcd: listening on %s (capacity=%d chaos=%v)",
			addr, srv.Capacity(), cfg.AllowChaos)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("ataqcd: %v received, draining", sig)
	}

	// Stop admitting first (readyz flips to 503, new compiles get a typed
	// 503 draining), give in-flight jobs their drain window, then close the
	// listener with a little headroom for responses already being written.
	drainErr := srv.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("ataqcd: shutdown complete")
	return nil
}
