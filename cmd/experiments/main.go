// Command experiments regenerates the paper's evaluation tables and
// figures (§7) and writes them as markdown.
//
// Usage:
//
//	experiments -quick                 # laptop-scale versions of everything
//	experiments -exp fig17,table1     # a subset
//	experiments -out results.md        # full-scale run (up to 1024 qubits)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ata-pattern/ataqc/internal/bench"
	"github.com/ata-pattern/ataqc/internal/obs"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run reduced sizes (fast)")
		exps     = flag.String("exp", "all", "comma-separated experiment ids: fig17,fig20,fig22,table1,table2,table3,table4,tvd,fig24,fig25,fig26,ablations,sema")
		out      = flag.String("out", "", "write markdown to this file instead of stdout")
		trials   = flag.Int("trials", 0, "graphs per cell (default: 10 full / 3 quick)")
		seed     = flag.Int64("seed", 1, "workload seed")
		timeout  = flag.Duration("timeout", 0, "per-compile wall-clock budget, e.g. 2m (0 = unbounded); expired compiles degrade to the linear-depth ATA fallback instead of failing the run")
		workers  = flag.Int("workers", 0, "hybrid prediction workers per compile (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
		traceOut = flag.String("trace", "", "record every governed compile's execution trace to this file (concurrent trials interleave spans)")
		traceFmt = flag.String("trace-format", "chrome", "trace format: chrome (load in ui.perfetto.dev), jsonl, or text")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	switch *traceFmt {
	case "chrome", "jsonl", "text":
	default:
		log.Fatalf("unknown -trace-format %q (want chrome, jsonl, or text)", *traceFmt)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Deadline = *timeout
	cfg.Workers = *workers
	if *traceOut != "" {
		cfg.Trace = obs.New()
	}
	if *timeout > 0 {
		fmt.Fprintf(os.Stderr, "per-compile deadline %s: compiles that run out of budget degrade to the structured ATA solution instead of failing the run\n", *timeout)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	type runner struct {
		id  string
		run func() (*bench.Report, error)
	}
	convRounds := 30
	if *quick {
		convRounds = 12
	}
	fig25Qubits := 16
	if *quick {
		fig25Qubits = 8
	}
	runners := []runner{
		{"fig17", func() (*bench.Report, error) { return bench.RunFig17(cfg) }},
		{"fig20", func() (*bench.Report, error) { return bench.RunDepthGate(cfg, "heavy-hex") }},
		{"fig22", func() (*bench.Report, error) { return bench.RunDepthGate(cfg, "sycamore") }},
		{"table1", func() (*bench.Report, error) { return bench.RunTable1(cfg) }},
		{"table2", func() (*bench.Report, error) { return bench.RunTable2(cfg) }},
		{"table3", func() (*bench.Report, error) { return bench.RunTable3(cfg) }},
		{"table4", func() (*bench.Report, error) { return bench.RunTable4(cfg) }},
		{"tvd", func() (*bench.Report, error) { return bench.RunTVD(cfg) }},
		{"fig24", func() (*bench.Report, error) { return bench.RunConvergence(cfg, 10, convRounds) }},
		{"fig25", func() (*bench.Report, error) { return bench.RunConvergence(cfg, fig25Qubits, convRounds) }},
		{"fig26", func() (*bench.Report, error) { return bench.RunCompileTime(cfg) }},
		{"ablations", func() (*bench.Report, error) { return bench.RunAblations(cfg) }},
		{"sema", func() (*bench.Report, error) { return bench.RunSemaAudit(cfg) }},
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := selected["all"]

	fmt.Fprintf(w, "# ataqc experiment results\n\ngenerated %s, quick=%v, trials=%d, seed=%d\n\n",
		time.Now().Format(time.RFC3339), *quick, cfg.Trials, cfg.Seed)
	for _, r := range runners {
		if !all && !selected[r.id] {
			continue
		}
		start := time.Now()
		rep, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		if _, err := rep.WriteTo(w); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", r.id, time.Since(start).Round(time.Millisecond))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		var werr error
		switch *traceFmt {
		case "chrome":
			werr = cfg.Trace.WriteChrome(f)
		case "jsonl":
			werr = cfg.Trace.WriteJSONL(f)
		default:
			werr = cfg.Trace.WriteText(f)
		}
		if werr != nil {
			log.Fatal(werr)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%s)\n", *traceOut, *traceFmt)
	}
}
