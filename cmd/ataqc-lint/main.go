// Command ataqc-lint statically verifies compiled circuits without
// simulating them. It runs the internal/verify analyzers — arch-conformance,
// perm-soundness, coverage, sema (phase-polynomial semantic equivalence),
// depth-consistency, angle-sanity, dead-swap — and prints one line per
// finding with machine-readable gate positions and operands.
//
// Two input modes:
//
//	ataqc-lint -problem edges.txt -arch grid [-strategy hybrid]
//	    compile the edge-list problem with the chosen strategy and lint the
//	    result with every analyzer (problem and mapping are known, so the
//	    full invariant set applies)
//	ataqc-lint -qasm out.qasm -arch grid
//	    parse an OpenQASM 2.0 gate stream and lint it against the coupling
//	    graph of the architecture sized to its qreg (analyzers that need the
//	    interaction graph or mapping — coverage, perm-soundness, sema —
//	    report themselves as skipped: that context is not recoverable from
//	    plain QASM)
//
// -sema restricts the run to the semantic-equivalence analyzer alone.
//
// With -json, each finding is one JSON object per line, and the stream ends
// with a {"analyzers":[...]} summary object listing every analyzer that ran
// with a "skipped" marker for those whose required context was missing — so
// CI diffs detect silently-skipped analyzers instead of mistaking "didn't
// run" for "clean".
//
// Exit codes, suitable for CI: 0 = clean or warnings only, 1 = error
// findings, unparseable QASM, or warnings under -werror, 2 = bad usage or
// unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/bench"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/verify"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		probFile = flag.String("problem", "", "edge-list problem file: compile it and lint the result")
		qasmFile = flag.String("qasm", "", "OpenQASM 2.0 file: lint the gate stream against the coupling graph")
		family   = flag.String("arch", "grid", "architecture family: line, grid, sycamore, heavy-hex, hexagon, mumbai")
		strategy = flag.String("strategy", "hybrid", "compiler for -problem mode: hybrid, greedy, ata, 2qan, qaim, paulihedral")
		semaOnly = flag.Bool("sema", false, "run only the phase-polynomial semantic-equivalence analyzer")
		werror   = flag.Bool("werror", false, "treat warning-severity findings as errors")
		asJSON   = flag.Bool("json", false, "emit one JSON finding per line plus a final analyzers summary object (the human summary moves to stderr)")
	)
	flag.Parse()

	if (*probFile == "") == (*qasmFile == "") {
		fmt.Fprintln(os.Stderr, "ataqc-lint: exactly one of -problem or -qasm is required")
		flag.Usage()
		return 2
	}

	var (
		diags    []ataqc.Diagnostic
		statuses []ataqc.AnalyzerStatus
		label    string
	)
	if *probFile != "" {
		switch ataqc.Strategy(*strategy) {
		case ataqc.StrategyHybrid, ataqc.StrategyGreedy, ataqc.StrategyATA,
			ataqc.Strategy2QAN, ataqc.StrategyQAIM, ataqc.StrategyPaulihedral:
		default:
			fmt.Fprintf(os.Stderr, "ataqc-lint: unknown strategy %q\n", *strategy)
			return 2
		}
		prob, err := ataqc.LoadProblem(*probFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		dev, err := deviceFor(*family, prob.Qubits())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		res, err := ataqc.Compile(dev, prob, ataqc.Options{Strategy: ataqc.Strategy(*strategy)})
		if err != nil {
			// Compile enforces the error-severity analyzers itself, so a
			// verification failure surfaces here — that is a lint failure,
			// not a usage error.
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 1
		}
		diags, statuses = res.LintStatus()
		label = fmt.Sprintf("%s on %s (%d gates)", *probFile, dev.Name(), res.CXCount())
	} else {
		f, err := os.Open(*qasmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		c, parseErr := circuit.ParseQASM(f)
		f.Close()
		if parseErr != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", parseErr)
			return 1
		}
		a, err := archFor(*family, c.NQubits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		// Plain QASM carries no interaction graph or mapping: run the full
		// analyzer list anyway and let the status accounting record which
		// ones skipped themselves for missing context.
		pass := &verify.Pass{Circuit: c, Arch: a}
		ds, sts := verify.RunStatus(pass, verify.All...)
		for _, d := range ds {
			diags = append(diags, ataqc.Diagnostic{
				Analyzer: d.Analyzer, Severity: d.Severity.String(), Gate: d.Gate,
				Kind: d.Kind, Q0: d.Q0, Q1: d.Q1, L0: d.L0, L1: d.L1,
				Message: d.Message,
			})
		}
		for _, s := range sts {
			statuses = append(statuses, ataqc.AnalyzerStatus{Analyzer: s.Name, Skipped: s.Skipped, Reason: s.Reason})
		}
		label = fmt.Sprintf("%s on %s (%d gates)", *qasmFile, a.Name, len(c.Gates))
	}
	if *semaOnly {
		diags, statuses = onlySema(diags, statuses)
	}

	errs, warns := 0, 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			// One finding per line, operands included so a consumer never has
			// to re-dump the circuit to locate the gate.
			if err := enc.Encode(struct {
				Analyzer string `json:"analyzer"`
				Severity string `json:"severity"`
				Gate     int    `json:"gate"`
				Kind     string `json:"kind,omitempty"`
				Q0       int    `json:"q0"`
				Q1       int    `json:"q1"`
				L0       int    `json:"l0"`
				L1       int    `json:"l1"`
				Message  string `json:"message"`
			}{d.Analyzer, d.Severity, d.Gate, d.Kind, d.Q0, d.Q1, d.L0, d.L1, d.Message}); err != nil {
				fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
				return 2
			}
		} else {
			fmt.Println(d)
		}
		if d.Severity == "error" {
			errs++
		} else {
			warns++
		}
	}
	summary := os.Stdout
	if *asJSON {
		summary = os.Stderr // keep stdout pure JSONL
		// The closing summary object records the full analyzer roster with
		// skip accounting; a CI diff against it catches analyzers that
		// silently stopped running.
		type status struct {
			Analyzer string `json:"analyzer"`
			Skipped  bool   `json:"skipped"`
			Reason   string `json:"reason,omitempty"`
		}
		sts := make([]status, len(statuses))
		for i, s := range statuses {
			sts[i] = status{s.Analyzer, s.Skipped, s.Reason}
		}
		if err := enc.Encode(struct {
			Analyzers []status `json:"analyzers"`
		}{sts}); err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
	} else {
		for _, s := range statuses {
			if s.Skipped {
				fmt.Fprintf(summary, "note: analyzer %s skipped: %s\n", s.Analyzer, s.Reason)
			}
		}
	}
	switch {
	case errs > 0 || (*werror && warns > 0):
		fmt.Fprintf(summary, "%s: %d error(s), %d warning(s)\n", label, errs, warns)
		return 1
	case warns > 0:
		fmt.Fprintf(summary, "%s: ok, %d warning(s)\n", label, warns)
	default:
		fmt.Fprintf(summary, "%s: ok\n", label)
	}
	return 0
}

// onlySema narrows findings and statuses to the sema analyzer for -sema.
func onlySema(diags []ataqc.Diagnostic, statuses []ataqc.AnalyzerStatus) ([]ataqc.Diagnostic, []ataqc.AnalyzerStatus) {
	var d []ataqc.Diagnostic
	for _, x := range diags {
		if x.Analyzer == "sema" {
			d = append(d, x)
		}
	}
	var s []ataqc.AnalyzerStatus
	for _, x := range statuses {
		if x.Analyzer == "sema" {
			s = append(s, x)
		}
	}
	return d, s
}

// deviceFor sizes a public-API device for -problem mode.
func deviceFor(family string, n int) (*ataqc.Device, error) {
	switch family {
	case "line":
		return ataqc.LineDevice(n), nil
	case "grid":
		return ataqc.GridDevice(n), nil
	case "sycamore":
		return ataqc.SycamoreDevice(n), nil
	case "heavy-hex", "heavyhex":
		return ataqc.HeavyHexDevice(n), nil
	case "hexagon":
		return ataqc.HexagonDevice(n), nil
	case "mumbai":
		return ataqc.MumbaiDevice(), nil
	}
	return nil, fmt.Errorf("unknown architecture family %q", family)
}

// archFor sizes a coupling graph for -qasm mode. The qreg of QASM emitted
// by this toolchain records the physical qubit count, so sizing the family
// to it reproduces the original device; a mismatch is reported by the
// arch-conformance analyzer rather than guessed away here.
func archFor(family string, n int) (*arch.Arch, error) {
	if family == "mumbai" {
		return arch.Mumbai(), nil
	}
	return bench.ArchFor(family, n)
}
