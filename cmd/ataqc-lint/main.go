// Command ataqc-lint statically verifies compiled circuits without
// simulating them. It runs the internal/verify analyzers — arch-conformance,
// perm-soundness, coverage, depth-consistency, dead-swap — and prints one
// line per finding with machine-readable gate positions.
//
// Two input modes:
//
//	ataqc-lint -problem edges.txt -arch grid [-strategy hybrid]
//	    compile the edge-list problem with the chosen strategy and lint the
//	    result with every analyzer (problem and mapping are known, so the
//	    full invariant set applies)
//	ataqc-lint -qasm out.qasm -arch grid
//	    parse an OpenQASM 2.0 gate stream and lint it against the coupling
//	    graph of the architecture sized to its qreg (only placement checks
//	    apply: the interaction graph and mapping are not recoverable from
//	    plain QASM)
//
// Exit codes, suitable for CI: 0 = clean or warnings only, 1 = error
// findings, unparseable QASM, or warnings under -werror, 2 = bad usage or
// unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/bench"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/verify"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		probFile = flag.String("problem", "", "edge-list problem file: compile it and lint the result")
		qasmFile = flag.String("qasm", "", "OpenQASM 2.0 file: lint the gate stream against the coupling graph")
		family   = flag.String("arch", "grid", "architecture family: line, grid, sycamore, heavy-hex, hexagon, mumbai")
		strategy = flag.String("strategy", "hybrid", "compiler for -problem mode: hybrid, greedy, ata, 2qan, qaim, paulihedral")
		werror   = flag.Bool("werror", false, "treat warning-severity findings as errors")
		asJSON   = flag.Bool("json", false, "emit one JSON finding per line instead of text (the summary line moves to stderr)")
	)
	flag.Parse()

	if (*probFile == "") == (*qasmFile == "") {
		fmt.Fprintln(os.Stderr, "ataqc-lint: exactly one of -problem or -qasm is required")
		flag.Usage()
		return 2
	}

	var (
		diags []ataqc.Diagnostic
		label string
	)
	if *probFile != "" {
		switch ataqc.Strategy(*strategy) {
		case ataqc.StrategyHybrid, ataqc.StrategyGreedy, ataqc.StrategyATA,
			ataqc.Strategy2QAN, ataqc.StrategyQAIM, ataqc.StrategyPaulihedral:
		default:
			fmt.Fprintf(os.Stderr, "ataqc-lint: unknown strategy %q\n", *strategy)
			return 2
		}
		prob, err := ataqc.LoadProblem(*probFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		dev, err := deviceFor(*family, prob.Qubits())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		res, err := ataqc.Compile(dev, prob, ataqc.Options{Strategy: ataqc.Strategy(*strategy)})
		if err != nil {
			// Compile enforces the error-severity analyzers itself, so a
			// verification failure surfaces here — that is a lint failure,
			// not a usage error.
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 1
		}
		diags = res.Lint()
		label = fmt.Sprintf("%s on %s (%d gates)", *probFile, dev.Name(), res.CXCount())
	} else {
		f, err := os.Open(*qasmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		c, parseErr := circuit.ParseQASM(f)
		f.Close()
		if parseErr != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", parseErr)
			return 1
		}
		a, err := archFor(*family, c.NQubits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
			return 2
		}
		pass := &verify.Pass{Circuit: c, Arch: a}
		for _, d := range verify.Run(pass, verify.ArchConformance, verify.DeadSwap) {
			diags = append(diags, ataqc.Diagnostic{
				Analyzer: d.Analyzer, Severity: d.Severity.String(), Gate: d.Gate, Message: d.Message,
			})
		}
		label = fmt.Sprintf("%s on %s (%d gates)", *qasmFile, a.Name, len(c.Gates))
	}

	errs, warns := 0, 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			// One finding per line: {"analyzer":…,"severity":…,"gate":…,"message":…}.
			if err := enc.Encode(struct {
				Analyzer string `json:"analyzer"`
				Severity string `json:"severity"`
				Gate     int    `json:"gate"`
				Message  string `json:"message"`
			}{d.Analyzer, d.Severity, d.Gate, d.Message}); err != nil {
				fmt.Fprintln(os.Stderr, "ataqc-lint:", err)
				return 2
			}
		} else {
			fmt.Println(d)
		}
		if d.Severity == "error" {
			errs++
		} else {
			warns++
		}
	}
	summary := os.Stdout
	if *asJSON {
		summary = os.Stderr // keep stdout pure JSONL
	}
	switch {
	case errs > 0 || (*werror && warns > 0):
		fmt.Fprintf(summary, "%s: %d error(s), %d warning(s)\n", label, errs, warns)
		return 1
	case warns > 0:
		fmt.Fprintf(summary, "%s: ok, %d warning(s)\n", label, warns)
	default:
		fmt.Fprintf(summary, "%s: ok\n", label)
	}
	return 0
}

// deviceFor sizes a public-API device for -problem mode.
func deviceFor(family string, n int) (*ataqc.Device, error) {
	switch family {
	case "line":
		return ataqc.LineDevice(n), nil
	case "grid":
		return ataqc.GridDevice(n), nil
	case "sycamore":
		return ataqc.SycamoreDevice(n), nil
	case "heavy-hex", "heavyhex":
		return ataqc.HeavyHexDevice(n), nil
	case "hexagon":
		return ataqc.HexagonDevice(n), nil
	case "mumbai":
		return ataqc.MumbaiDevice(), nil
	}
	return nil, fmt.Errorf("unknown architecture family %q", family)
}

// archFor sizes a coupling graph for -qasm mode. The qreg of QASM emitted
// by this toolchain records the physical qubit count, so sizing the family
// to it reproduces the original device; a mismatch is reported by the
// arch-conformance analyzer rather than guessed away here.
func archFor(family string, n int) (*arch.Arch, error) {
	if family == "mumbai" {
		return arch.Mumbai(), nil
	}
	return bench.ArchFor(family, n)
}
