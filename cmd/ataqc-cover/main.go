// Command ataqc-cover is the per-package coverage regression gate. It
// parses a merged `go test -coverprofile` profile, computes statement
// coverage per package, and compares each against a checked-in floor file
// (coverage_floors.json). A package below its floor — or one that vanished
// from the profile entirely — fails the gate with a non-zero exit, so
// coverage can only ratchet down by an explicit floor regeneration in the
// same change.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	ataqc-cover -profile cover.out -floors coverage_floors.json
//
// Regenerate floors (measured coverage minus -margin, floored at 0):
//
//	ataqc-cover -profile cover.out -floors coverage_floors.json -write
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	Statements int
	Covered    int
}

// Percent returns statement coverage in percent, 0 for empty packages.
func (c pkgCover) Percent() float64 {
	if c.Statements == 0 {
		return 0
	}
	return 100 * float64(c.Covered) / float64(c.Statements)
}

// parseProfile reads a go coverage profile ("mode: ..." header followed by
// "file.go:startL.startC,endL.endC numStmts count" lines) and aggregates
// statement coverage per package import path (the directory of each file).
//
// Blocks for the same source region can repeat in merged profiles; each
// line is counted as written, matching `go tool cover -func` semantics
// closely enough for a regression floor.
func parseProfile(r io.Reader) (map[string]pkgCover, error) {
	out := make(map[string]pkgCover)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "mode:") {
			continue
		}
		colon := strings.LastIndex(line, ".go:")
		if colon < 0 {
			return nil, fmt.Errorf("line %d: not a coverage block: %q", lineNo, line)
		}
		file := line[:colon+3]
		rest := line[colon+4:]
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want 'range stmts count', got %q", lineNo, rest)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: statement count: %w", lineNo, err)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: hit count: %w", lineNo, err)
		}
		pkg := path.Dir(file)
		c := out[pkg]
		c.Statements += stmts
		if count > 0 {
			c.Covered += stmts
		}
		out[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// gate compares measured per-package coverage against floors and returns
// human-readable regression messages (empty = pass). Packages measured but
// absent from the floors pass — they are picked up at the next -write.
func gate(measured map[string]pkgCover, floors map[string]float64) []string {
	var bad []string
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		floor := floors[pkg]
		cov, ok := measured[pkg]
		if !ok {
			bad = append(bad, fmt.Sprintf(
				"%s: absent from the coverage profile (floor %.1f%%) — deleted packages need a floor regeneration (-write)",
				pkg, floor))
			continue
		}
		if got := cov.Percent(); got < floor {
			bad = append(bad, fmt.Sprintf("%s: coverage %.1f%% below floor %.1f%%", pkg, got, floor))
		}
	}
	return bad
}

// writeFloors serialises floors as sorted, indented JSON with a trailing
// newline — the exact bytes checked in as coverage_floors.json.
func writeFloors(w io.Writer, measured map[string]pkgCover, margin float64) error {
	floors := make(map[string]float64, len(measured))
	for pkg, cov := range measured {
		f := cov.Percent() - margin
		if f < 0 {
			f = 0
		}
		floors[pkg] = math.Floor(f*10) / 10 // one decimal, rounded down
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(floors)
}

func run() error {
	profilePath := flag.String("profile", "cover.out", "merged go test -coverprofile output")
	floorsPath := flag.String("floors", "coverage_floors.json", "per-package coverage floor file")
	write := flag.Bool("write", false, "regenerate the floor file from the profile instead of gating")
	margin := flag.Float64("margin", 2.0, "slack subtracted from measured coverage when writing floors (points)")
	flag.Parse()

	pf, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	defer pf.Close()
	measured, err := parseProfile(pf)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *profilePath, err)
	}
	if len(measured) == 0 {
		return fmt.Errorf("%s holds no coverage blocks", *profilePath)
	}

	if *write {
		out, err := os.Create(*floorsPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := writeFloors(out, measured, *margin); err != nil {
			return err
		}
		fmt.Printf("wrote %d package floors to %s (margin %.1f points)\n",
			len(measured), *floorsPath, *margin)
		return nil
	}

	raw, err := os.ReadFile(*floorsPath)
	if err != nil {
		return err
	}
	floors := make(map[string]float64)
	if err := json.Unmarshal(raw, &floors); err != nil {
		return fmt.Errorf("parse %s: %w", *floorsPath, err)
	}
	if bad := gate(measured, floors); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, msg)
		}
		return fmt.Errorf("%d package(s) regressed below their coverage floor", len(bad))
	}
	fmt.Printf("coverage gate: %d floors held\n", len(floors))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ataqc-cover:", err)
		os.Exit(1)
	}
}
