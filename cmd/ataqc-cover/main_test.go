package main

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: set
github.com/ata-pattern/ataqc/internal/greedy/engine.go:10.2,12.3 4 1
github.com/ata-pattern/ataqc/internal/greedy/engine.go:14.2,16.3 6 0
github.com/ata-pattern/ataqc/internal/greedy/reference.go:8.2,9.3 10 1
github.com/ata-pattern/ataqc/internal/serve/pressure.go:42.2,44.3 5 3
`

func TestParseProfilePerPackage(t *testing.T) {
	got, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	greedy := got["github.com/ata-pattern/ataqc/internal/greedy"]
	if greedy.Statements != 20 || greedy.Covered != 14 {
		t.Fatalf("greedy = %+v, want 14/20", greedy)
	}
	if pct := greedy.Percent(); pct != 70 {
		t.Fatalf("greedy percent = %g, want 70", pct)
	}
	serve := got["github.com/ata-pattern/ataqc/internal/serve"]
	if serve.Statements != 5 || serve.Covered != 5 {
		t.Fatalf("serve = %+v, want 5/5", serve)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := parseProfile(strings.NewReader("mode: set\nnot a block\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := parseProfile(strings.NewReader("mode: set\nf.go:1.1,2.2 x 1\n")); err == nil {
		t.Fatal("non-numeric statement count accepted")
	}
}

func TestGate(t *testing.T) {
	measured := map[string]pkgCover{
		"a": {Statements: 10, Covered: 9}, // 90%
		"b": {Statements: 10, Covered: 5}, // 50%
	}

	// Held floors pass; a package above its floor passes.
	if bad := gate(measured, map[string]float64{"a": 85, "b": 50}); len(bad) != 0 {
		t.Fatalf("held floors flagged: %v", bad)
	}
	// A regression fails with the package named.
	bad := gate(measured, map[string]float64{"a": 95})
	if len(bad) != 1 || !strings.Contains(bad[0], "a:") {
		t.Fatalf("regression not flagged: %v", bad)
	}
	// A package present in floors but missing from the profile fails: a
	// silently vanished package must not read as "no regression".
	bad = gate(measured, map[string]float64{"gone": 10})
	if len(bad) != 1 || !strings.Contains(bad[0], "absent") {
		t.Fatalf("vanished package not flagged: %v", bad)
	}
	// Measured packages without floors pass (picked up at next -write).
	if bad := gate(measured, map[string]float64{}); len(bad) != 0 {
		t.Fatalf("floorless packages flagged: %v", bad)
	}
}

func TestWriteFloorsAppliesMarginAndRoundsDown(t *testing.T) {
	measured := map[string]pkgCover{
		"x": {Statements: 3, Covered: 2}, // 66.66...%
		"y": {Statements: 10, Covered: 0},
	}
	var sb strings.Builder
	if err := writeFloors(&sb, measured, 2.0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// 66.66 - 2 = 64.66 -> floored to one decimal = 64.6; 0 - 2 clamps to 0.
	if !strings.Contains(out, `"x": 64.6`) {
		t.Fatalf("margin/rounding wrong: %s", out)
	}
	if !strings.Contains(out, `"y": 0`) {
		t.Fatalf("negative floor not clamped: %s", out)
	}
}
