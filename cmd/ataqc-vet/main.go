// Command ataqc-vet runs the repo's custom static analyzers (internal/vet)
// over the codebase, next to `go vet` in CI. The analyzers enforce the
// contracts generic vet cannot know about:
//
//	maprange    no map-range iteration where output order is part of the
//	            deterministic-compilation contract
//	walltime    no time.Now/Since/Until or global math/rand source in
//	            compile paths (clocks and randomness are injected)
//	obsspan     every obs span opened in a function is ended on all
//	            return paths
//	nakedpanic  panic arguments are package-prefixed invariant messages,
//	            never bare error values (DESIGN.md panic-audit rule)
//
// Usage:
//
//	ataqc-vet [-json] [-list] [packages]
//
// Packages default to ./... relative to the module root (found by walking
// up from the working directory). Audited sites are suppressed in source
// with `//vet:ignore <analyzer> <justification>` on the offending line or
// the line above.
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ata-pattern/ataqc/internal/vet"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		asJSON = flag.Bool("json", false, "emit one JSON finding per line")
		list   = flag.Bool("list", false, "list the analyzers and their contracts, then exit")
	)
	flag.Parse()

	if *list {
		for _, a := range vet.All {
			fmt.Printf("%s\n%s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ataqc-vet:", err)
		return 2
	}
	loader, err := vet.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ataqc-vet:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := loader.Match(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ataqc-vet:", err)
		return 2
	}

	findings := 0
	enc := json.NewEncoder(os.Stdout)
	for _, dir := range dirs {
		pass, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ataqc-vet:", err)
			return 2
		}
		for _, d := range vet.RunPackage(pass, vet.All...) {
			findings++
			if *asJSON {
				rel := d.Pos.Filename
				if r, err := filepath.Rel(root, rel); err == nil {
					rel = r
				}
				if err := enc.Encode(struct {
					Analyzer string `json:"analyzer"`
					File     string `json:"file"`
					Line     int    `json:"line"`
					Col      int    `json:"col"`
					Message  string `json:"message"`
				}{d.Analyzer, rel, d.Pos.Line, d.Pos.Column, d.Message}); err != nil {
					fmt.Fprintln(os.Stderr, "ataqc-vet:", err)
					return 2
				}
			} else {
				fmt.Println(d)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ataqc-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
