// Command ataqc-warm precomputes warm-start state for a persistent
// compilation cache (see -cache-dir on ataqcd): it sweeps the registered
// architecture families at common sizes and writes, for every unit of
// each instance, the structured-pattern geometry records the hybrid
// compiler's prediction loop would otherwise derive on first use, plus
// depth-optimal solver records for the small complete sub-problems the
// structured patterns are benchmarked against. Optionally it precompiles
// a bench workload's entire problem mix into the result cache, so a
// daemon pointed at the same directory answers those requests from disk
// on its very first request.
//
// The daemon picks the records up automatically: the first compile per
// architecture pulls that architecture's persisted pattern records into
// the in-process pattern cache, and result records are served through
// the normal two-tier lookup.
//
// Example:
//
//	ataqc-warm -cache-dir /var/cache/ataqc -sizes 16,25,36,64
//	ataqc-warm -cache-dir /var/cache/ataqc -workload examples/workloads/repeat-heavy.yaml
//	ataqcd -cache-dir /var/cache/ataqc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/loadgen"
	"github.com/ata-pattern/ataqc/internal/solver"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// families maps -archs names to sized constructors. Mumbai is a fixed
// 27-qubit device; its constructor ignores the size argument.
var families = []struct {
	name  string
	sized bool
	build func(n int) *arch.Arch
}{
	{"line", true, arch.Line},
	{"grid", true, arch.GridN},
	{"sycamore", true, arch.SycamoreN},
	{"heavy-hex", true, arch.HeavyHexN},
	{"hexagon", true, arch.HexagonN},
	{"mumbai", false, func(int) *arch.Arch { return arch.Mumbai() }},
}

func main() {
	var (
		dir        = flag.String("cache-dir", "", "persistent compilation-cache directory to warm (required)")
		maxBytes   = flag.Int64("cache-max-bytes", 0, "disk cache byte budget (0 = unbounded)")
		archList   = flag.String("archs", "line,grid,sycamore,heavy-hex,hexagon,mumbai", "comma-separated architecture families to sweep")
		sizeList   = flag.String("sizes", "16,25,36,64", "comma-separated device sizes (qubits) per sized family")
		solverMax  = flag.Int("solver-max-qubits", 5, "largest complete problem to solve depth-optimally on the line (0 = skip solver records)")
		solverNode = flag.Int("solver-max-nodes", 0, "A* node budget per solver record (0 = solver default)")
		workload   = flag.String("workload", "", "bench workload spec whose problem mix is precompiled into the result cache")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ataqc-warm: -cache-dir is required")
		os.Exit(2)
	}
	if err := run(*dir, *maxBytes, *archList, *sizeList, *solverMax, *solverNode, *workload); err != nil {
		fmt.Fprintf(os.Stderr, "ataqc-warm: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string, maxBytes int64, archList, sizeList string, solverMax, solverNodes int, workload string) error {
	sizes, err := parseSizes(sizeList)
	if err != nil {
		return err
	}
	store, err := cachestore.Open(dir, maxBytes)
	if err != nil {
		return err
	}
	cache := core.NewCache(cachestore.NewTiered(store, 0))
	defer cache.Close()

	archs, err := selectArchs(archList, sizes)
	if err != nil {
		return err
	}
	for _, a := range archs {
		n, err := warmPatterns(store, a)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		fmt.Fprintf(os.Stderr, "ataqc-warm: %-16s %2d pattern records\n", a.Name, n)
	}
	if solverMax >= 2 {
		n, err := warmSolver(store, solverMax, solverNodes)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ataqc-warm: line cliques     %2d solver records\n", n)
	}
	if workload != "" {
		n, err := warmWorkload(cache, workload)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ataqc-warm: workload         %2d results precompiled\n", n)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "ataqc-warm: cache now holds %d entries, %d bytes\n", st.Entries, st.Bytes)
	return nil
}

// warmPatterns writes the structural geometry record of every warm
// region of a: the full architecture plus each unit (for unit-decomposed
// families) or each path half (for path-compiled families) — the regions
// the §6.3 range detector most often confines predictions to.
func warmPatterns(store *cachestore.Store, a *arch.Arch) (int, error) {
	pc := swapnet.NewPatternCache(0)
	fp := a.Fingerprint()
	written := 0
	for _, r := range warmRegions(a) {
		rec := pc.ExportRegion(a, r)
		if err := store.Put(cachestore.PatternKey(fp, r), cachestore.EncodePattern(rec)); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

func warmRegions(a *arch.Arch) []arch.Region {
	full := arch.FullRegion(a)
	seen := map[arch.Region]bool{full: true}
	regions := []arch.Region{full}
	add := func(r arch.Region) {
		if !seen[r] {
			seen[r] = true
			regions = append(regions, r)
		}
	}
	if full.UsesPath {
		mid := (full.I0 + full.I1) / 2
		add(arch.Region{UsesPath: true, I0: full.I0, I1: mid})
		add(arch.Region{UsesPath: true, I0: mid + 1, I1: full.I1})
	} else {
		for u := full.U0; u <= full.U1; u++ {
			add(arch.Region{U0: u, U1: u, P0: full.P0, P1: full.P1})
		}
	}
	return regions
}

// warmSolver proves the depth optimum of the complete problem K_n on the
// n-qubit line for n = 2..maxQubits and records each, keyed by the
// problem's canonical hash. A budget-exhausted search is skipped, not
// fatal: the record is an optimization, not an obligation.
func warmSolver(store *cachestore.Store, maxQubits, maxNodes int) (int, error) {
	written := 0
	for n := 2; n <= maxQubits; n++ {
		a := arch.Line(n)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		res, err := solver.SolveContext(context.Background(), a, g, nil, solver.Options{MaxNodes: maxNodes})
		if errors.Is(err, solver.ErrSearchExhausted) {
			fmt.Fprintf(os.Stderr, "ataqc-warm: K_%d on line-%d: budget exhausted, skipped\n", n, n)
			continue
		}
		if err != nil {
			return written, fmt.Errorf("K_%d on line-%d: %w", n, n, err)
		}
		rec := &cachestore.SolverRecord{Depth: res.Depth, Explored: int64(res.Explored)}
		key := cachestore.SolverKey(a.Fingerprint(), graph.CanonicalHash(g))
		if err := store.Put(key, cachestore.EncodeSolver(rec)); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// warmWorkload compiles every problem of a bench workload spec through
// the cache, so the results are on disk before the daemon sees its first
// request. Default compile options mirror the daemon's default request
// path (serial, default angle/alpha), which is what makes the cache keys
// line up.
func warmWorkload(cache *core.Cache, path string) (int, error) {
	spec, err := loadgen.LoadWorkload(path)
	if err != nil {
		return 0, err
	}
	compiled := 0
	for _, m := range spec.Mix {
		a, err := buildArch(m.Arch, m.N)
		if err != nil {
			return compiled, fmt.Errorf("mix entry %s/%d: %w", m.Arch, m.N, err)
		}
		prob := graph.GnpConnected(m.N, m.Density, rand.New(rand.NewSource(m.Seed)))
		res, err := core.CompileCached(context.Background(), a, prob, core.Options{Workers: 1}, cache)
		if err != nil {
			return compiled, fmt.Errorf("mix entry %s/%d: %w", m.Arch, m.N, err)
		}
		if res.Stats.CacheTier == "" {
			compiled++
		}
	}
	return compiled, nil
}

func buildArch(name string, n int) (*arch.Arch, error) {
	for _, f := range families {
		if f.name == name || (name == "heavyhex" && f.name == "heavy-hex") {
			return f.build(n), nil
		}
	}
	return nil, fmt.Errorf("unknown architecture family %q", name)
}

func selectArchs(archList string, sizes []int) ([]*arch.Arch, error) {
	var out []*arch.Arch
	seen := map[uint64]bool{}
	for _, name := range strings.Split(archList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		matched := false
		for _, f := range families {
			if f.name != name && !(name == "heavyhex" && f.name == "heavy-hex") {
				continue
			}
			matched = true
			ns := sizes
			if !f.sized {
				ns = []int{0}
			}
			for _, n := range ns {
				a := f.build(n)
				if fp := a.Fingerprint(); !seen[fp] {
					seen[fp] = true
					out = append(out, a)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("unknown architecture family %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no architectures selected")
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return sizes, nil
}
