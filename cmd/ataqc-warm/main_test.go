package main

import (
	"context"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestWarmSweepPopulatesCache runs the sweeper end to end against a
// temporary cache directory and proves a fresh daemon-side cache
// actually benefits: pattern records preload, and the precompiled
// workload problem is answered from the disk tier.
func TestWarmSweepPopulatesCache(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0, "line,grid", "9,12", 4, 0, "../../examples/workloads/repeat-heavy.yaml"); err != nil {
		t.Fatalf("run: %v", err)
	}

	store, err := cachestore.Open(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	cache := core.NewCache(cachestore.NewTiered(store, 0))
	defer cache.Close()

	a := arch.GridN(9)
	if n := cache.PreloadPatterns(a); n == 0 {
		t.Fatalf("no pattern records preloaded for %s", a.Name)
	}
	if got := len(store.Keys(cachestore.KindSolver, arch.Line(3).Fingerprint())); got != 1 {
		t.Fatalf("solver records for line-3 = %d, want 1", got)
	}

	// The repeat-heavy spec's hot problem (grid 16, density 0.4, seed 3)
	// was precompiled; a brand-new cache over the same directory must
	// serve it from disk.
	hot := graph.GnpConnected(16, 0.4, rand.New(rand.NewSource(3)))
	res, err := core.CompileCached(context.Background(), arch.GridN(16), hot, core.Options{Workers: 1}, cache)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Stats.CacheTier != string(cachestore.TierDisk) {
		t.Fatalf("hot problem served from tier %q, want disk", res.Stats.CacheTier)
	}
}
