package main

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// scraper polls the daemon's metricsz endpoint in the background and
// keeps the most recent successful scrape, so the bench report can embed
// the daemon-side counters that explain the client-side numbers (shed vs
// pressure levels, per-endpoint status mix, latency histograms).
type scraper struct {
	interval time.Duration
	cancel   context.CancelFunc
	done     chan struct{}

	// owned by the loop until done is closed
	scrapes int
	errors  int
	final   map[string]float64
}

func startScraper(url string, interval time.Duration) *scraper {
	ctx, cancel := context.WithCancel(context.Background())
	s := &scraper{interval: interval, cancel: cancel, done: make(chan struct{})}
	target := strings.TrimSuffix(url, "/") + "/metricsz"
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				// One last scrape after the load stops: the final counters
				// are the ones worth embedding.
				if m, err := scrapeOnce(target); err == nil {
					s.scrapes++
					s.final = m
				} else {
					s.errors++
				}
				return
			case <-tick.C:
				if m, err := scrapeOnce(target); err == nil {
					s.scrapes++
					s.final = m
				} else {
					s.errors++
				}
			}
		}
	}()
	return s
}

// stop ends the polling (taking a final scrape) and returns the section.
func (s *scraper) stop() *metricsSection {
	s.cancel()
	<-s.done
	return &metricsSection{
		ScrapeIntervalSec: s.interval.Seconds(),
		Scrapes:           s.scrapes,
		ScrapeErrors:      s.errors,
		Final:             s.final,
	}
}

// scrapeOnce fetches and flattens one Prometheus text exposition into a
// samples map keyed by the labeled series name exactly as exposed.
func scrapeOnce(target string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value — the value is everything after the last space
		// so label values containing spaces cannot confuse the split.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}
