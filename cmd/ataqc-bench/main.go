// Command ataqc-bench load-tests a running ataqcd daemon: it sweeps a list
// of target request rates, drives each level with a fleet of concurrent
// clients (internal/loadgen), optionally weaves hostile-client chaos
// scenarios (internal/faultinject network faults) into the stream, and
// writes a BENCH_service.json report with per-level p50/p90/p99 latency and
// shed/degrade counts.
//
// Exit status is the CI gate: non-zero when the daemon died during the run
// (healthz check), when any chaos scenario elicited an unstructured error,
// or when -max-p99-ms is set and any level's p99 exceeds it.
//
// Example:
//
//	ataqcd -addr 127.0.0.1:8080 -chaos &
//	ataqc-bench -url http://127.0.0.1:8080 -rps 20,60,120 -clients 8 \
//	    -duration 10s -chaos-fraction 0.15 -out BENCH_service.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ata-pattern/ataqc/internal/loadgen"
)

// benchReport is the BENCH_service.json schema (see EXPERIMENTS.md).
type benchReport struct {
	URL string `json:"url"`
	// Workload names the spec file's workload when -workload drove the
	// run; absent for flag-driven sweeps.
	Workload string            `json:"workload,omitempty"`
	Seed     int64             `json:"seed"`
	Levels   []*loadgen.Report `json:"levels"`
	DaemonOK bool              `json:"daemonOk"`
	// Metrics is the daemon-side view of the run, present when
	// -scrape-interval is set: the final metricsz scrape (flattened
	// Prometheus samples) plus scrape bookkeeping.
	Metrics *metricsSection `json:"metrics,omitempty"`
}

// metricsSection summarizes the metricsz scrapes taken during the run.
type metricsSection struct {
	ScrapeIntervalSec float64 `json:"scrapeIntervalSec"`
	Scrapes           int     `json:"scrapes"`
	ScrapeErrors      int     `json:"scrapeErrors"`
	// Final maps each sample of the last successful scrape — the labeled
	// Prometheus series name exactly as exposed — to its value.
	Final map[string]float64 `json:"final,omitempty"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "daemon base URL")
		rpsList  = flag.String("rps", "20,60,120", "comma-separated target request rates, one load level each (0 = closed loop)")
		clients  = flag.Int("clients", 8, "concurrent clients per level")
		duration = flag.Duration("duration", 10*time.Second, "duration per level")
		chaos    = flag.Float64("chaos-fraction", 0, "fraction of slots given to hostile-client scenarios")
		seed     = flag.Int64("seed", 1, "workload and jitter seed")
		out      = flag.String("out", "", "write the JSON report here ('' = stdout)")
		maxP99   = flag.Float64("max-p99-ms", 0, "fail when any level's p99 exceeds this many ms (0 = no gate)")
		scrape   = flag.Duration("scrape-interval", 0, "scrape the daemon's metricsz at this interval during the run and embed the final scrape in the report (0 = off)")
		workload = flag.String("workload", "", "YAML workload spec (see examples/workloads/); its levels and problem mix replace -rps/-clients/-duration/-chaos-fraction/-seed")
	)
	flag.Parse()
	if err := run(*url, *rpsList, *clients, *duration, *chaos, *seed, *out, *maxP99, *scrape, *workload); err != nil {
		fmt.Fprintf(os.Stderr, "ataqc-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(url, rpsList string, clients int, duration time.Duration, chaos float64, seed int64, out string, maxP99 float64, scrapeEvery time.Duration, workload string) error {
	rep := &benchReport{URL: url, Seed: seed}
	var levels []loadgen.Config
	if workload != "" {
		spec, err := loadgen.LoadWorkload(workload)
		if err != nil {
			return err
		}
		if levels, err = spec.Configs(url); err != nil {
			return err
		}
		rep.Workload = spec.Name
		rep.Seed = spec.Seed
	} else {
		rates, err := parseRates(rpsList)
		if err != nil {
			return err
		}
		for i, rps := range rates {
			levels = append(levels, loadgen.Config{
				URL:           url,
				Clients:       clients,
				RPS:           rps,
				Duration:      duration,
				ChaosFraction: chaos,
				Seed:          seed + int64(i)*104729,
			})
		}
	}
	if err := ping(url); err != nil {
		return fmt.Errorf("daemon not reachable before the run: %w", err)
	}

	var sc *scraper
	if scrapeEvery > 0 {
		sc = startScraper(url, scrapeEvery)
	}
	for i, cfg := range levels {
		fmt.Fprintf(os.Stderr, "ataqc-bench: level %d/%d rps=%g clients=%d duration=%s chaos=%g\n",
			i+1, len(levels), cfg.RPS, cfg.Clients, cfg.Duration, cfg.ChaosFraction)
		lvl, err := loadgen.Run(context.Background(), cfg)
		if err != nil {
			return fmt.Errorf("level rps=%g: %w", cfg.RPS, err)
		}
		rep.Levels = append(rep.Levels, lvl)
		fmt.Fprintf(os.Stderr, "ataqc-bench:   sent=%d ok=%d degraded=%d shed=%d retries=%d p50=%.1fms p99=%.1fms chaos=%d/%d\n",
			lvl.Sent, lvl.OK, lvl.Degraded, lvl.Shed, lvl.Retries,
			lvl.LatencyMs.P50, lvl.LatencyMs.P99, lvl.Chaos.Sent-lvl.Chaos.ContractViolations, lvl.Chaos.Sent)
	}

	// The run's central claim: after everything above, the daemon is alive
	// and still answering.
	rep.DaemonOK = ping(url) == nil
	if sc != nil {
		rep.Metrics = sc.stop()
	}

	if err := emit(rep, out); err != nil {
		return err
	}
	return gate(rep, maxP99)
}

// gate turns the report into the CI pass/fail verdict.
func gate(rep *benchReport, maxP99 float64) error {
	if !rep.DaemonOK {
		return fmt.Errorf("daemon did not survive the run (healthz failed)")
	}
	for _, lvl := range rep.Levels {
		if lvl.Chaos.ContractViolations > 0 {
			return fmt.Errorf("rps=%g: %d chaos scenarios got unstructured answers: %v",
				lvl.TargetRPS, lvl.Chaos.ContractViolations, lvl.Chaos.Violated)
		}
		if lvl.TraceIDViolations > 0 {
			return fmt.Errorf("rps=%g: %d responses arrived without a well-formed trace ID",
				lvl.TargetRPS, lvl.TraceIDViolations)
		}
		if lvl.Sent > 0 && lvl.OK == 0 && lvl.Shed == 0 {
			return fmt.Errorf("rps=%g: no request succeeded or was shed — daemon answered nothing useful", lvl.TargetRPS)
		}
		if maxP99 > 0 && lvl.LatencyMs.P99 > maxP99 {
			return fmt.Errorf("rps=%g: p99 %.1fms exceeds the %.1fms gate", lvl.TargetRPS, lvl.LatencyMs.P99, maxP99)
		}
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad rps %q", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no load levels in %q", s)
	}
	return rates, nil
}

func ping(url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(url, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	return nil
}

func emit(rep *benchReport, out string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}
