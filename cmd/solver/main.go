// Command solver runs the depth-optimal A* solver (§4) on a small instance
// and prints the optimal schedule — the tool used to discover the
// structured patterns of §3.
//
// Usage:
//
//	solver -arch line -rows 1 -cols 5            # K5 clique on a 1x5 line
//	solver -arch grid -rows 2 -cols 3 -bipartite # 2xUnit sub-problem
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/solver"
)

func main() {
	var (
		family    = flag.String("arch", "line", "line or grid")
		rows      = flag.Int("rows", 1, "grid rows (ignored for line)")
		cols      = flag.Int("cols", 4, "line length / grid columns")
		bipartite = flag.Bool("bipartite", false, "solve the 2xUnit bipartite sub-problem instead of the clique")
		maxNodes  = flag.Int("maxnodes", 1<<22, "search node budget")
		timeout   = flag.Duration("timeout", 0, "wall-clock search budget, e.g. 30s (0 = unbounded)")
		traceOut  = flag.String("trace", "", "record the search's execution trace (solver.astar span, explored/open/closed metrics) to this file")
		traceFmt  = flag.String("trace-format", "chrome", "trace format: chrome (load in ui.perfetto.dev), jsonl, or text")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	writeTrace := traceWriterFor(*traceFmt)
	if writeTrace == nil {
		log.Fatalf("unknown -trace-format %q (want chrome, jsonl, or text)", *traceFmt)
	}

	// Flag values reach architecture constructors that treat bad sizes as
	// internal invariants; reject them at the user-input boundary instead.
	if *rows < 1 || *cols < 1 {
		log.Fatalf("-rows and -cols must be positive (got %d, %d)", *rows, *cols)
	}
	if *maxNodes < 1 {
		log.Fatalf("-maxnodes must be positive (got %d)", *maxNodes)
	}

	var a *arch.Arch
	switch *family {
	case "line":
		a = arch.Line(*cols)
	case "grid":
		a = arch.Grid(*rows, *cols)
	default:
		log.Fatalf("unknown architecture %q", *family)
	}

	n := a.N()
	var p *graph.Graph
	if *bipartite {
		if *family != "grid" || *rows != 2 {
			log.Fatal("-bipartite requires -arch grid -rows 2")
		}
		p = graph.New(n)
		for i := 0; i < *cols; i++ {
			for j := *cols; j < 2**cols; j++ {
				p.AddEdge(i, j)
			}
		}
	} else {
		p = graph.Complete(n)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.New()
	}
	res, err := solver.SolveContext(ctx, a, p, nil, solver.Options{MaxNodes: *maxNodes, Trace: tr})
	if *traceOut != "" {
		// The span records the abandoned search too, so write the trace
		// before bailing on the error.
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			log.Fatal(ferr)
		}
		if werr := writeTrace(tr, f); werr != nil {
			log.Fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%s)\n", *traceOut, *traceFmt)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architecture: %s\n", a)
	fmt.Printf("problem:      %d gates\n", p.M())
	fmt.Printf("optimal depth: %d cycles (%d nodes explored)\n", res.Depth, res.Explored)
	for i, cyc := range res.Cycles {
		fmt.Printf("cycle %2d:", i)
		for _, op := range cyc {
			if op.Gate {
				fmt.Printf("  gate%v@(%d,%d)", op.Tag, op.P, op.Q)
			} else {
				fmt.Printf("  swap(%d,%d)", op.P, op.Q)
			}
		}
		fmt.Println()
	}
}

// traceWriterFor maps a -trace-format value to an exporter (nil = unknown).
func traceWriterFor(format string) func(*obs.Trace, *os.File) error {
	switch format {
	case "chrome":
		return func(t *obs.Trace, f *os.File) error { return t.WriteChrome(f) }
	case "jsonl":
		return func(t *obs.Trace, f *os.File) error { return t.WriteJSONL(f) }
	case "text":
		return func(t *obs.Trace, f *os.File) error { return t.WriteText(f) }
	}
	return nil
}
