// Command solver runs the depth-optimal A* solver (§4) on a small instance
// and prints the optimal schedule — the tool used to discover the
// structured patterns of §3.
//
// Usage:
//
//	solver -arch line -rows 1 -cols 5            # K5 clique on a 1x5 line
//	solver -arch grid -rows 2 -cols 3 -bipartite # 2xUnit sub-problem
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/bench"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/solver"
)

func main() {
	var (
		family    = flag.String("arch", "line", "line or grid")
		rows      = flag.Int("rows", 1, "grid rows (ignored for line)")
		cols      = flag.Int("cols", 4, "line length / grid columns")
		bipartite = flag.Bool("bipartite", false, "solve the 2xUnit bipartite sub-problem instead of the clique")
		maxNodes  = flag.Int("maxnodes", 1<<22, "search node budget (negative = unbounded, e.g. -maxnodes -1)")
		symmetry  = flag.Bool("symmetry", false, "canonicalize states under line/grid automorphisms (same optimal depth, smaller search)")
		reference = flag.Bool("reference", false, "use the pre-optimization reference engine (slow; for comparisons)")
		benchJSON = flag.String("bench-json", "", "also write the run as a BENCH_solver.json-schema record to this file")
		timeout   = flag.Duration("timeout", 0, "wall-clock search budget, e.g. 30s (0 = unbounded)")
		traceOut  = flag.String("trace", "", "record the search's execution trace (solver.astar span, explored/open/closed metrics) to this file")
		traceFmt  = flag.String("trace-format", "chrome", "trace format: chrome (load in ui.perfetto.dev), jsonl, or text")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	writeTrace := traceWriterFor(*traceFmt)
	if writeTrace == nil {
		log.Fatalf("unknown -trace-format %q (want chrome, jsonl, or text)", *traceFmt)
	}

	// Flag values reach architecture constructors that treat bad sizes as
	// internal invariants; reject them at the user-input boundary instead.
	if *rows < 1 || *cols < 1 {
		log.Fatalf("-rows and -cols must be positive (got %d, %d)", *rows, *cols)
	}
	if *maxNodes == 0 {
		log.Fatal("-maxnodes must be positive, or negative for an unbounded search (got 0)")
	}

	var a *arch.Arch
	switch *family {
	case "line":
		a = arch.Line(*cols)
	case "grid":
		a = arch.Grid(*rows, *cols)
	default:
		log.Fatalf("unknown architecture %q", *family)
	}

	n := a.N()
	var p *graph.Graph
	instance := "clique"
	if *bipartite {
		if *family != "grid" || *rows != 2 {
			log.Fatal("-bipartite requires -arch grid -rows 2")
		}
		p = graph.New(n)
		for i := 0; i < *cols; i++ {
			for j := *cols; j < 2**cols; j++ {
				p.AddEdge(i, j)
			}
		}
		instance = "bipartite"
	} else {
		p = graph.Complete(n)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.New()
	}
	opts := solver.Options{MaxNodes: *maxNodes, Symmetry: *symmetry, Trace: tr}
	var res *solver.Result
	var err error
	if *reference {
		res, err = solver.ReferenceSolve(ctx, a, p, nil, opts)
	} else {
		res, err = solver.SolveContext(ctx, a, p, nil, opts)
	}
	if *traceOut != "" {
		// The span records the abandoned search too, so write the trace
		// before bailing on the error.
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			log.Fatal(ferr)
		}
		if werr := writeTrace(tr, f); werr != nil {
			log.Fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%s)\n", *traceOut, *traceFmt)
	}
	if err != nil {
		log.Fatal(err)
	}
	nps := 0.0
	if sec := res.Elapsed.Seconds(); sec > 0 {
		nps = float64(res.Explored) / sec
	}
	fmt.Printf("architecture: %s\n", a)
	fmt.Printf("problem:      %d gates\n", p.M())
	fmt.Printf("optimal depth: %d cycles (%d nodes explored)\n", res.Depth, res.Explored)
	fmt.Printf("search: %.3fs, %.0f nodes/sec, peak open %d, peak closed %d\n",
		res.Elapsed.Seconds(), nps, res.PeakOpen, res.Generated)
	for i, cyc := range res.Cycles {
		fmt.Printf("cycle %2d:", i)
		for _, op := range cyc {
			if op.Gate {
				fmt.Printf("  gate%v@(%d,%d)", op.Tag, op.P, op.Q)
			} else {
				fmt.Printf("  swap(%d,%d)", op.P, op.Q)
			}
		}
		fmt.Println()
	}
	if *benchJSON != "" {
		engine := bench.SolverEnginePacked
		if *reference {
			engine = bench.SolverEngineReference
		} else if *symmetry {
			engine = bench.SolverEnginePackedSym
		}
		doc := &bench.SolverBench{Entries: []bench.SolverBenchEntry{
			bench.SolverEntryFor(fmt.Sprintf("%s/%s", a.Name, instance), a, p, engine, res),
		}}
		f, ferr := os.Create(*benchJSON)
		if ferr != nil {
			log.Fatal(ferr)
		}
		if werr := doc.WriteJSON(f); werr != nil {
			log.Fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "bench record: %s\n", *benchJSON)
	}
}

// traceWriterFor maps a -trace-format value to an exporter (nil = unknown).
func traceWriterFor(format string) func(*obs.Trace, *os.File) error {
	switch format {
	case "chrome":
		return func(t *obs.Trace, f *os.File) error { return t.WriteChrome(f) }
	case "jsonl":
		return func(t *obs.Trace, f *os.File) error { return t.WriteJSONL(f) }
	case "text":
		return func(t *obs.Trace, f *os.File) error { return t.WriteText(f) }
	}
	return nil
}
