// Command ataqc compiles a problem graph — synthetic or loaded from an edge
// list — onto a regular quantum architecture and reports the paper's
// metrics.
//
// Usage:
//
//	ataqc -arch heavy-hex -n 64 -density 0.3 -strategy hybrid
//	ataqc -arch mumbai -n 10 -density 0.3 -noise -qasm out.qasm
//	ataqc -arch grid -problem edges.txt -json
//
// The edge-list format is one "u v" pair per line (0-based vertex ids);
// blank lines and lines starting with '#' are ignored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"slices"

	"github.com/ata-pattern/ataqc"
)

func main() {
	var (
		family   = flag.String("arch", "heavy-hex", "architecture family: line, grid, sycamore, heavy-hex, hexagon, mumbai")
		n        = flag.Int("n", 64, "number of logical qubits")
		density  = flag.Float64("density", 0.3, "problem graph density")
		regular  = flag.Bool("regular", false, "use a random regular graph instead of G(n,p)")
		seed     = flag.Int64("seed", 1, "workload seed")
		strategy = flag.String("strategy", "hybrid", "hybrid, greedy, ata, 2qan, qaim, paulihedral")
		noisy    = flag.Bool("noise", false, "attach a synthetic calibration and compile noise-aware")
		qasmOut  = flag.String("qasm", "", "write the compiled circuit as OpenQASM 2.0 to this file")
		probFile = flag.String("problem", "", "load the problem graph from an edge-list file instead of generating one")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
		showArch = flag.Bool("show-arch", false, "print an ASCII picture of the device and exit")
		showSch  = flag.Bool("schedule", false, "print the compiled schedule cycle by cycle")
		timeout  = flag.Duration("timeout", 0, "wall-clock compile budget, e.g. 30s (0 = unbounded); on expiry the compiler degrades to the linear-depth ATA fallback")
		workers  = flag.Int("workers", 0, "hybrid prediction workers (0 = GOMAXPROCS, 1 = serial); the compiled circuit is identical for every value")
		traceOut = flag.String("trace", "", "record the compile's execution trace to this file (tracing never changes the circuit)")
		traceFmt = flag.String("trace-format", "chrome", "trace format: chrome (load in ui.perfetto.dev), jsonl, or text")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file; compiler phases carry ataqc_phase/ataqc_worker pprof labels")
	)
	flag.Parse()

	if !slices.Contains(ataqc.TraceFormats, *traceFmt) {
		log.Fatalf("unknown -trace-format %q (want one of %v)", *traceFmt, ataqc.TraceFormats)
	}

	// Flag values feed generators and device constructors that treat bad
	// sizes as internal invariants; reject them at the user-input boundary.
	if *probFile == "" {
		if *n < 2 {
			log.Fatalf("-n must be at least 2 (got %d)", *n)
		}
		if *density <= 0 || *density > 1 {
			log.Fatalf("-density must be in (0,1] (got %g)", *density)
		}
	}

	// The problem comes first: a file-loaded instance determines the
	// device size.
	var prob *ataqc.Problem
	switch {
	case *probFile != "":
		var err error
		prob, err = ataqc.LoadProblem(*probFile)
		if err != nil {
			log.Fatal(err)
		}
		*n = prob.Qubits()
	case *regular:
		var err error
		prob, err = ataqc.RegularProblem(*n, *density, *seed)
		if err != nil {
			log.Fatal(err)
		}
	default:
		prob = ataqc.RandomProblem(*n, *density, *seed)
	}

	var dev *ataqc.Device
	switch *family {
	case "line":
		dev = ataqc.LineDevice(*n)
	case "grid":
		dev = ataqc.GridDevice(*n)
	case "sycamore":
		dev = ataqc.SycamoreDevice(*n)
	case "heavy-hex", "heavyhex":
		dev = ataqc.HeavyHexDevice(*n)
	case "hexagon":
		dev = ataqc.HexagonDevice(*n)
	case "mumbai":
		dev = ataqc.MumbaiDevice()
	default:
		log.Fatalf("unknown architecture %q", *family)
	}
	if *noisy {
		dev = dev.WithSyntheticNoise(*seed)
	}
	if *showArch {
		fmt.Printf("%s (%d qubits)\n%s", dev.Name(), dev.Qubits(), dev.Render())
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var tr *ataqc.Trace
	if *traceOut != "" {
		tr = ataqc.NewTrace()
	}
	res, err := ataqc.CompileContext(ctx, dev, prob, ataqc.Options{
		Strategy:   ataqc.Strategy(*strategy),
		NoiseAware: *noisy,
		Workers:    *workers,
		Trace:      tr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteFormat(f, *traceFmt); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%s)\n", *traceOut, *traceFmt)
	}
	if res.Degraded() {
		fmt.Fprintf(os.Stderr, "note: compile budget ran out; degraded to the structured ATA fallback (%s)\n", res.DegradeReason())
	}

	// The QASM file is written before the output branches so -json and
	// -qasm compose: JSON on stdout, circuit on disk.
	if *qasmOut != "" {
		f, err := os.Create(*qasmOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteQASM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out := map[string]any{
			"device":       dev.Name(),
			"deviceQubits": dev.Qubits(),
			"qubits":       prob.Qubits(),
			"interactions": prob.Interactions(),
			"strategy":     *strategy,
			"depth":        res.Depth(),
			"cxCount":      res.CXCount(),
			"swaps":        res.SwapCount(),
			"initial":      res.InitialMapping(),
			"final":        res.FinalMapping(),
		}
		if res.Degraded() {
			out["degraded"] = true
			out["degradeReason"] = res.DegradeReason()
		}
		if *noisy {
			out["estimatedFidelity"] = res.EstimatedFidelity()
		}
		if *qasmOut != "" {
			out["qasm"] = *qasmOut
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("device:        %s (%d qubits)\n", dev.Name(), dev.Qubits())
	fmt.Printf("problem:       %d qubits, %d interactions (density %.2f)\n",
		prob.Qubits(), prob.Interactions(), *density)
	fmt.Printf("strategy:      %s\n", *strategy)
	fmt.Printf("depth:         %d\n", res.Depth())
	fmt.Printf("CX count:      %d\n", res.CXCount())
	fmt.Printf("SWAPs:         %d\n", res.SwapCount())
	if *noisy {
		fmt.Printf("est. fidelity: %.4g\n", res.EstimatedFidelity())
	}
	if *showSch {
		if err := res.WriteSchedule(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *qasmOut != "" {
		fmt.Printf("qasm:          %s\n", *qasmOut)
	}
}
