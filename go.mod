module github.com/ata-pattern/ataqc

go 1.22
