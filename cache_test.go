package ataqc

import (
	"bytes"
	"testing"
)

// TestPublicCacheRoundTrip drives the whole public cache surface: a cold
// compile misses and persists, a warm repeat is served from memory with a
// byte-identical circuit, and a reopened cache (fresh memory tier) serves
// the same result from disk.
func TestPublicCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dev := GridDevice(16)
	prob := RandomProblem(14, 0.35, 9)
	opts := Options{Workers: 1}

	ref, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("uncached compile: %v", err)
	}

	cache, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	opts.Cache = cache

	cold, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if tier := cold.CacheTier(); tier != "" {
		t.Fatalf("cold compile reported cache tier %q", tier)
	}
	warm, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if tier := warm.CacheTier(); tier != "mem" {
		t.Fatalf("warm compile tier = %q, want mem", tier)
	}
	assertSameQASM(t, ref, warm, "warm")

	st := cache.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats after warm hit: %+v", st)
	}
	if st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("disk tier not populated: %+v", st)
	}
	if err := cache.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reopened, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	opts.Cache = reopened
	restored, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("post-restart compile: %v", err)
	}
	if tier := restored.CacheTier(); tier != "disk" {
		t.Fatalf("post-restart tier = %q, want disk", tier)
	}
	assertSameQASM(t, ref, restored, "post-restart")
}

// TestMemoryCacheServesRepeats: the disk-less cache still answers repeat
// compiles from the memory tier, and baseline strategies bypass it.
func TestMemoryCacheServesRepeats(t *testing.T) {
	dev := LineDevice(12)
	prob := RandomProblem(10, 0.4, 4)
	opts := Options{Workers: 1, Cache: MemoryCache()}

	if _, err := Compile(dev, prob, opts); err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if tier := warm.CacheTier(); tier != "mem" {
		t.Fatalf("warm tier = %q, want mem", tier)
	}

	opts.Strategy = Strategy2QAN
	base, err := Compile(dev, prob, opts)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if tier := base.CacheTier(); tier != "" {
		t.Fatalf("baseline strategy reported cache tier %q", tier)
	}
	if st := opts.Cache.Stats(); st.Misses != 1 || st.MemHits != 1 {
		t.Fatalf("baseline compile touched the result cache: %+v", st)
	}
}

func assertSameQASM(t *testing.T, want, got *Result, label string) {
	t.Helper()
	var w, g bytes.Buffer
	if err := want.WriteQASM(&w); err != nil {
		t.Fatalf("%s: reference QASM: %v", label, err)
	}
	if err := got.WriteQASM(&g); err != nil {
		t.Fatalf("%s: cached QASM: %v", label, err)
	}
	if !bytes.Equal(w.Bytes(), g.Bytes()) {
		t.Fatalf("%s: cached circuit is not byte-identical to the fresh compile", label)
	}
}
