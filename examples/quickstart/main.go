// Quickstart: compile a random QAOA problem onto an IBM heavy-hex device
// and inspect the result.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/ata-pattern/ataqc"
)

func main() {
	// A 64-qubit heavy-hex device (the shape IBM scales, Fig 1b) and a
	// random density-0.3 MaxCut instance — the paper's bread-and-butter
	// workload.
	dev := ataqc.HeavyHexDevice(64)
	prob := ataqc.RandomProblem(64, 0.3, 42)

	res, err := ataqc.Compile(dev, prob, ataqc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compiled %d interactions onto %s\n", prob.Interactions(), dev.Name())
	fmt.Printf("  depth: %d   CX: %d   SWAPs: %d\n", res.Depth(), res.CXCount(), res.SwapCount())

	// Compare against the pure strategies the hybrid combines (§5.4).
	for _, s := range []ataqc.Strategy{ataqc.StrategyGreedy, ataqc.StrategyATA} {
		alt, err := ataqc.Compile(dev, prob, ataqc.Options{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s depth: %d   CX: %d\n", s, alt.Depth(), alt.CXCount())
	}

	// Export OpenQASM for downstream toolchains.
	var sb strings.Builder
	if err := res.WriteQASM(&sb); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(sb.String(), "\n", 6)
	fmt.Println("\nfirst QASM lines:")
	for _, l := range lines[:5] {
		fmt.Println("  " + l)
	}
	_ = os.Stdout
}
