// MaxCut end-to-end: compile a QAOA circuit for the simulated IBM Mumbai
// device, optimise the angles with the classical optimizer, and compare the
// expected cut against the brute-force optimum — the paper's §7.4 workflow.
package main

import (
	"fmt"
	"log"

	"github.com/ata-pattern/ataqc"
)

func main() {
	const n = 10
	dev := ataqc.MumbaiDevice().WithSyntheticNoise(7)
	prob := ataqc.RandomProblem(n, 0.3, 11)

	// Noise-aware compilation places gates on the device's good links.
	res, err := ataqc.Compile(dev, prob, ataqc.Options{
		NoiseAware:     true,
		CrosstalkAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d-qubit MaxCut onto %s: depth %d, CX %d, est. fidelity %.3f\n",
		n, dev.Name(), res.Depth(), res.CXCount(), res.EstimatedFidelity())

	// Optimise (gamma, beta) with Nelder–Mead (the COBYLA stand-in).
	gamma, beta, expected := res.OptimizeQAOA(60)
	fmt.Printf("optimised angles: gamma=%.3f beta=%.3f  ->  E[cut] = %.3f\n", gamma, beta, expected)

	// Brute-force optimum for reference (n is small).
	edges := prob.InteractionList()
	best := 0
	for assign := 0; assign < 1<<n; assign++ {
		c := 0
		for _, e := range edges {
			if (assign>>uint(e[0]))&1 != (assign>>uint(e[1]))&1 {
				c++
			}
		}
		if c > best {
			best = c
		}
	}
	fmt.Printf("optimal cut: %d  (QAOA p=1 approximation ratio %.2f)\n",
		best, expected/float64(best))

	// Noisy execution: the noise model drags the distribution toward
	// uniform; TVD quantifies it (the §7.4 metric).
	ideal := res.SimulateDistribution(gamma, beta)
	noisy, err := res.NoisyDistribution(gamma, beta, 16, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TVD(ideal, noisy) = %.3f\n", ataqc.TVD(ideal, noisy))
}
