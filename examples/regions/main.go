// Regions: the range detector (§6.3) in action. A small interaction graph
// placed on a large device must compile into its own corner — the ATA
// prediction and the compiled circuit are confined to the detected region,
// so depth tracks the *problem* size, not the device size.
package main

import (
	"fmt"
	"log"

	"github.com/ata-pattern/ataqc"
)

func main() {
	prob := ataqc.RandomProblem(24, 0.5, 3)

	fmt.Printf("%-18s %8s %8s %8s\n", "device", "qubits", "depth", "CX")
	for _, devQubits := range []int{24, 64, 256, 1024} {
		dev := ataqc.HeavyHexDevice(devQubits)
		res, err := ataqc.Compile(dev, prob, ataqc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d %8d %8d\n", dev.Name(), dev.Qubits(), res.Depth(), res.CXCount())
	}
	fmt.Println("\nthe 24-qubit problem costs the same on a 1024-qubit device:")
	fmt.Println("compilation is confined to the detected interaction region (§6.3)")
}
