// Hamiltonian simulation: compile the paper's Table 3 two-local models
// (NNN 1D Ising, NNN 2D XY, NNN 3D Heisenberg) onto a 64-qubit heavy-hex
// device and compare the hybrid compiler with the 2QAN-style baseline.
package main

import (
	"fmt"
	"log"

	"github.com/ata-pattern/ataqc"
)

func main() {
	dev := ataqc.HeavyHexDevice(64)
	fmt.Printf("device: %s (%d qubits)\n\n", dev.Name(), dev.Qubits())
	fmt.Printf("%-15s %8s %8s %8s %8s\n", "model", "depth", "CX", "2qan-D", "2qan-CX")

	for _, m := range []struct {
		name  string
		build func() *ataqc.Problem
	}{
		{"1D-Ising", func() *ataqc.Problem { return ising(64) }},
		{"2D-XY", func() *ataqc.Problem { return xy(8, 8) }},
		{"3D-Heisenberg", func() *ataqc.Problem { return heisenberg(4, 4, 4) }},
	} {
		prob := m.build()
		ours, err := ataqc.Compile(dev, prob, ataqc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		tqan, err := ataqc.Compile(dev, prob, ataqc.Options{Strategy: ataqc.Strategy2QAN})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8d %8d %8d %8d\n",
			m.name, ours.Depth(), ours.CXCount(), tqan.Depth(), tqan.CXCount())
	}
}

// ising builds the next-nearest-neighbour 1D Ising interaction graph.
func ising(n int) *ataqc.Problem {
	p := ataqc.NewProblem(n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			p.AddInteraction(i, i+1)
		}
		if i+2 < n {
			p.AddInteraction(i, i+2)
		}
	}
	return p
}

// xy builds the NNN 2D XY interaction graph (grid + diagonals).
func xy(rows, cols int) *ataqc.Problem {
	p := ataqc.NewProblem(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				p.AddInteraction(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				p.AddInteraction(id(r, c), id(r+1, c))
				if c+1 < cols {
					p.AddInteraction(id(r, c), id(r+1, c+1))
				}
				if c > 0 {
					p.AddInteraction(id(r, c), id(r+1, c-1))
				}
			}
		}
	}
	return p
}

// heisenberg builds the NNN 3D Heisenberg interaction graph: all lattice
// pairs at squared distance 1 or 2.
func heisenberg(x, y, z int) *ataqc.Problem {
	p := ataqc.NewProblem(x * y * z)
	id := func(i, j, k int) int { return (k*y+j)*x + i }
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							d2 := di*di + dj*dj + dk*dk
							if d2 != 1 && d2 != 2 {
								continue
							}
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= x || jj < 0 || jj >= y || kk < 0 || kk >= z {
								continue
							}
							p.AddInteraction(id(i, j, k), id(ii, jj, kk))
						}
					}
				}
			}
		}
	}
	return p
}
