// Scaling study: compilation time and circuit quality as the problem grows
// from 32 to 512 qubits — the behaviour behind Fig 26 and Table 2. The
// hybrid compiler stays near-linear; the Paulihedral-style baseline's
// depth and gate count fall behind as density bites.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ata-pattern/ataqc"
)

func main() {
	fmt.Printf("%8s %12s %10s %10s %12s %12s\n",
		"qubits", "compile", "depth", "CX", "pauli-depth", "pauli-CX")
	for _, n := range []int{32, 64, 128, 256, 512} {
		dev := ataqc.HeavyHexDevice(n)
		prob := ataqc.RandomProblem(n, 0.3, int64(n))

		start := time.Now()
		ours, err := ataqc.Compile(dev, prob, ataqc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)

		pauli, err := ataqc.Compile(dev, prob, ataqc.Options{Strategy: ataqc.StrategyPaulihedral})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12s %10d %10d %12d %12d\n",
			n, elapsed, ours.Depth(), ours.CXCount(), pauli.Depth(), pauli.CXCount())
	}
}
