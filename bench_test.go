package ataqc

// One benchmark per paper table/figure (DESIGN.md experiment index E1–E12)
// plus the ablations A1–A3. Each benchmark runs a laptop-scale version of
// the experiment and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation's shape;
// `cmd/experiments` runs the full-scale versions.

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/bench"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/qaoa"
	"github.com/ata-pattern/ataqc/internal/sim"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

func benchReport(b *testing.B, run func() (*bench.Report, error)) {
	b.Helper()
	var rep *bench.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

// BenchmarkFig17 — E1: greedy vs solver-guided vs ours (§5.4, Fig 17).
func BenchmarkFig17(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Trials = 1
	benchReport(b, func() (*bench.Report, error) { return bench.RunFig17(cfg) })
}

// BenchmarkFig20 — E2/E3: depth and gate count vs QAIM/Paulihedral on
// heavy-hex (Figs 20–21).
func BenchmarkFig20(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Trials = 1
	benchReport(b, func() (*bench.Report, error) { return bench.RunDepthGate(cfg, "heavy-hex") })
}

// BenchmarkFig22 — E4/E5: the same comparison on Sycamore (Figs 22–23).
func BenchmarkFig22(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Trials = 1
	benchReport(b, func() (*bench.Report, error) { return bench.RunDepthGate(cfg, "sycamore") })
}

// BenchmarkTable1 — E6: ours vs 2QAN vs QAIM.
func BenchmarkTable1(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Trials = 1
	benchReport(b, func() (*bench.Report, error) { return bench.RunTable1(cfg) })
}

// BenchmarkTable2 — E7: the 1024-qubit comparison vs Paulihedral (scaled).
func BenchmarkTable2(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Trials = 1
	benchReport(b, func() (*bench.Report, error) { return bench.RunTable2(cfg) })
}

// BenchmarkTable3 — E8: 2-local Hamiltonian benchmarks vs 2QAN.
func BenchmarkTable3(b *testing.B) {
	cfg := bench.QuickConfig()
	benchReport(b, func() (*bench.Report, error) { return bench.RunTable3(cfg) })
}

// BenchmarkTable4 — E9: comparison with the depth-optimal (SAT-style)
// solver on small 2D grids.
func BenchmarkTable4(b *testing.B) {
	cfg := bench.QuickConfig()
	benchReport(b, func() (*bench.Report, error) { return bench.RunTable4(cfg) })
}

// BenchmarkTVD — E10: §7.4's total-variation-distance comparison on the
// simulated Mumbai device.
func BenchmarkTVD(b *testing.B) {
	cfg := bench.QuickConfig()
	benchReport(b, func() (*bench.Report, error) { return bench.RunTVD(cfg) })
}

// BenchmarkQAOAConvergence — E11: Fig 24/25 energy convergence, ours vs the
// 2QAN baseline under Nelder–Mead.
func BenchmarkQAOAConvergence(b *testing.B) {
	cfg := bench.QuickConfig()
	benchReport(b, func() (*bench.Report, error) { return bench.RunConvergence(cfg, 8, 10) })
}

// BenchmarkCompileTime — E12: Fig 26 compilation-time scaling.
func BenchmarkCompileTime(b *testing.B) {
	cfg := bench.QuickConfig()
	benchReport(b, func() (*bench.Report, error) { return bench.RunCompileTime(cfg) })
}

// BenchmarkCompile1024 exercises one full-scale compilation (the headline
// scalability claim: 1024 qubits in ~seconds).
func BenchmarkCompile1024(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale")
	}
	rng := rand.New(rand.NewSource(1))
	p := graph.GnpConnected(1024, 0.3, rng)
	a := arch.HeavyHexN(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.Depth), "depth")
		b.ReportMetric(float64(res.Metrics.CXCount), "cx")
	}
}

// BenchmarkAblationGridMerge — A1: the unified gate+SWAP (3 CX) emission of
// the structured patterns vs the separate-layers variant, on a grid clique.
func BenchmarkAblationGridMerge(b *testing.B) {
	a := arch.Grid(6, 6)
	p := graph.Complete(36)
	for i := 0; i < b.N; i++ {
		res, err := core.Compile(a, p, core.Options{Mode: core.ModeATA})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.CXCount), "cx-fused")
		b.ReportMetric(float64(res.Metrics.Depth), "depth-fused")
		// Unfused equivalent: every unified gate+SWAP (3 CX) would cost
		// 2 (gate) + 3 (SWAP) CX as separate operations.
		fusedOps := res.Circuit.GateCount()[circuit.GateZZSwap]
		b.ReportMetric(float64(res.Metrics.CXCount+2*fusedOps), "cx-unfused-equal")
	}
}

// BenchmarkAblationSnake — A2: the structured grid pattern vs the naive
// snake-line pattern on the same grid clique (cycle depth and CX; the ATA
// entry point predicts both and emits the cheaper one).
func BenchmarkAblationSnake(b *testing.B) {
	a := arch.Grid(6, 6)
	p := graph.Complete(36)
	identity := make([]int, 36)
	for i := range identity {
		identity[i] = i
	}
	for i := 0; i < b.N; i++ {
		var cg, cs swapnet.Counter
		stG := swapnet.NewStateFromMapping(a, identity, swapnet.NewEdgeSet(p))
		swapnet.GridStructuredATA(stG, arch.FullRegion(a), cg.Emit)
		stS := swapnet.NewStateFromMapping(a, identity, swapnet.NewEdgeSet(p))
		swapnet.SnakeATA(stS, arch.FullRegion(a), cs.Emit)
		if !stG.Want.Empty() || !stS.Want.Empty() {
			b.Fatal("pattern incomplete")
		}
		b.ReportMetric(float64(cg.Cycles), "cycles-structured")
		b.ReportMetric(float64(cs.Cycles), "cycles-snake")
		b.ReportMetric(float64(cg.CX), "cx-structured")
		b.ReportMetric(float64(cs.CX), "cx-snake")
	}
}

// BenchmarkAblationHybrid — A3: prediction on/off and noise-awareness
// on/off on the same workload.
func BenchmarkAblationHybrid(b *testing.B) {
	a := arch.HeavyHexN(48)
	nm := noise.Synthetic(a, 3)
	rng := rand.New(rand.NewSource(9))
	p := graph.GnpConnected(48, 0.3, rng)
	for i := 0; i < b.N; i++ {
		hy, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid, Noise: nm})
		if err != nil {
			b.Fatal(err)
		}
		gr, err := core.Compile(a, p, core.Options{Mode: core.ModeGreedy, Noise: nm})
		if err != nil {
			b.Fatal(err)
		}
		blind, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(hy.Metrics.Depth), "depth-hybrid")
		b.ReportMetric(float64(gr.Metrics.Depth), "depth-noprediction")
		b.ReportMetric(hy.Metrics.LogFidelity-core.Measure(blind.Circuit, nm).LogFidelity, "logfid-gain")
	}
}

// BenchmarkStatevector measures the simulator kernel (gates/sec on 16
// qubits), the substrate of E10/E11.
func BenchmarkStatevector(b *testing.B) {
	s := sim.NewZero(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.H(i % 16)
		s.CX(i%16, (i+1)%16)
		s.ZZ(i%16, (i+3)%16, 0.3)
	}
}

// BenchmarkNelderMead measures the optimizer on an analytic objective.
func BenchmarkNelderMead(b *testing.B) {
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	for i := 0; i < b.N; i++ {
		qaoa.NelderMead(f, []float64{1, 1}, 60)
	}
}
