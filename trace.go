package ataqc

import (
	"fmt"
	"io"
	"time"

	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// Trace captures one or more compilations' execution timelines: hierarchical
// spans over every compiler phase (placement, greedy scheduling, the hybrid
// prediction fan-out with per-worker lanes, ATA materialisation,
// verification) plus a metrics registry (pattern-cache hits, worker-pool
// queue wait vs. run time, budget spend). Create one with NewTrace, pass it
// via Options.Trace, then export in the format you need:
//
//	tr := ataqc.NewTrace()
//	res, err := ataqc.Compile(dev, prob, ataqc.Options{Trace: tr})
//	f, _ := os.Create("compile.trace.json")
//	tr.WriteChrome(f) // load in chrome://tracing or ui.perfetto.dev
//
// A nil *Trace disables tracing entirely; the compiler's instrumented paths
// then cost a single pointer check each. Tracing never changes the compiled
// circuit — the determinism test in internal/core proves byte-identical
// QASM with and without a trace.
type Trace struct {
	t *obs.Trace
}

// NewTrace returns an enabled trace.
func NewTrace() *Trace { return &Trace{t: obs.New()} }

// inner unwraps to the internal trace (nil-safe: a nil *Trace is the
// disabled tracer).
func (t *Trace) inner() *obs.Trace {
	if t == nil {
		return nil
	}
	return t.t
}

// TraceFormats lists the formats WriteFormat accepts.
var TraceFormats = []string{"chrome", "jsonl", "text"}

// WriteChrome exports the trace as Chrome trace_event JSON, loadable in
// chrome://tracing or ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error { return t.inner().WriteChrome(w) }

// WriteJSONL exports the trace as a flat JSONL event log (one
// self-describing JSON object per line: spans, events, then metrics).
func (t *Trace) WriteJSONL(w io.Writer) error { return t.inner().WriteJSONL(w) }

// WriteText exports the trace as a human-readable span tree with a metrics
// summary.
func (t *Trace) WriteText(w io.Writer) error { return t.inner().WriteText(w) }

// WriteFormat exports in the named format: "chrome", "jsonl", or "text".
func (t *Trace) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "chrome":
		return t.WriteChrome(w)
	case "jsonl":
		return t.WriteJSONL(w)
	case "text":
		return t.WriteText(w)
	default:
		return fmt.Errorf("ataqc: unknown trace format %q (want chrome, jsonl, or text)", format)
	}
}

// Phase is one named, timed segment of the compile pipeline.
type Phase struct {
	Name     string
	Duration time.Duration
}

// CheckpointTiming is one hybrid checkpoint's prediction telemetry: which
// pool worker ran it (0 = the serial engine), how long it waited in the
// queue versus ran, and the selector cost it produced.
type CheckpointTiming struct {
	Prefix    int
	Cycle     int
	Worker    int
	Wait      time.Duration
	Run       time.Duration
	Cost      float64
	Scored    bool
	Evaluated bool
}

// Timeline is the compact per-compile phase breakdown. It is collected on
// every compilation, traced or not — benchmarks use it to report where
// compile time went.
type Timeline struct {
	Phases      []Phase
	Checkpoints []CheckpointTiming
	// Winner names the candidate the selector picked: "greedy", "ata", or
	// "hybrid".
	Winner string
}

// PhaseDuration returns the duration of the named phase ("place", "greedy",
// "predict", "materialize", "ata", "verify"); 0 when absent.
func (t *Timeline) PhaseDuration(name string) time.Duration {
	for _, p := range t.Phases {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// Timeline returns the compile's phase breakdown (zero value for baseline
// strategies, which are not instrumented).
func (r *Result) Timeline() Timeline {
	tl := Timeline{Winner: r.timeline.Winner}
	for _, p := range r.timeline.Phases {
		tl.Phases = append(tl.Phases, Phase(p))
	}
	for _, c := range r.timeline.Checkpoints {
		tl.Checkpoints = append(tl.Checkpoints, CheckpointTiming(c))
	}
	return tl
}

// DegradeDetail is the structured degradation breadcrumb: which budget
// tripped ("deadline", "max-nodes", "stall", "interrupt"), which rung of
// the degradation ladder answered ("best-so-far", "pure-ata"), the
// checkpoint index at the trip, and the triggering budget values.
type DegradeDetail struct {
	Budget      string
	Rung        string
	Checkpoint  int
	Checkpoints int
	WorkUnits   int64
	MaxNodes    int
	Deadline    time.Duration
	Cause       string
}

// DegradeDetail returns the structured reason (zero value when the compile
// did not degrade; see also DegradeReason for the rendered string).
func (r *Result) DegradeDetail() DegradeDetail { return DegradeDetail(r.degradeReason) }

// compile-time guards: the public mirrors must stay field-compatible with
// the internal types they convert from.
var (
	_ = Phase(core.Phase{})
	_ = CheckpointTiming(core.CheckpointTiming{})
	_ = DegradeDetail(core.DegradeReason{})
)
