package ataqc

import (
	"math"
	"strings"
	"testing"
)

func TestCustomDevice(t *testing.T) {
	dev, err := CustomDevice("ring", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Qubits() != 4 || len(dev.Couplings()) != 4 {
		t.Fatal("custom device wrong")
	}
	prob := NewProblem(4)
	prob.AddInteraction(0, 2)
	res, err := Compile(dev, prob, Options{Strategy: StrategyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.CXCount() < 2 {
		t.Fatal("gate missing")
	}
	// The hybrid needs a regular family.
	if _, err := Compile(dev, prob, Options{}); err == nil {
		t.Fatal("hybrid accepted an irregular device")
	}
	// Invalid couplings rejected.
	if _, err := CustomDevice("bad", 2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("bad coupling accepted")
	}
}

func TestParseCalibrationAndAttach(t *testing.T) {
	js := `{
		"twoQubit": [{"q0": 0, "q1": 1, "error": 0.02}, {"q0": 1, "q1": 2, "error": 0.01}],
		"singleQubit": [0.0003, 0.0002, 0.0004],
		"readout": [0.02, 0.03, 0.01],
		"idlePerCycle": 0.001
	}`
	cal, err := ParseCalibration(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	dev := LineDevice(3)
	if _, err := dev.WithCalibration(cal); err != nil {
		t.Fatal(err)
	}
	prob := NewProblem(3)
	prob.AddInteraction(0, 1)
	prob.AddInteraction(1, 2)
	res, err := Compile(dev, prob, Options{NoiseAware: true})
	if err != nil {
		t.Fatal(err)
	}
	f := res.EstimatedFidelity()
	if !(0 < f && f < 1) {
		t.Fatalf("fidelity %v", f)
	}
}

func TestCalibrationValidation(t *testing.T) {
	if _, err := ParseCalibration(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	dev := LineDevice(3)
	if _, err := dev.WithCalibration(&Calibration{
		TwoQubit: []CouplingError{{Q0: 0, Q1: 2, Error: 0.1}},
	}); err == nil {
		t.Fatal("non-coupling calibration accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		TwoQubit: []CouplingError{{Q0: 0, Q1: 1, Error: 1.5}},
	}); err == nil {
		t.Fatal("error rate > 1 accepted")
	}
	// NaN compares false against any range check, so it needs an explicit
	// rejection; same for Inf and negatives.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.01} {
		if _, err := dev.WithCalibration(&Calibration{
			TwoQubit: []CouplingError{{Q0: 0, Q1: 1, Error: bad}},
		}); err == nil {
			t.Fatalf("two-qubit error rate %v accepted", bad)
		}
	}
	if _, err := dev.WithCalibration(&Calibration{
		TwoQubit: []CouplingError{{Q0: -1, Q1: 1, Error: 0.1}},
	}); err == nil {
		t.Fatal("negative qubit id accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		TwoQubit: []CouplingError{
			{Q0: 0, Q1: 1, Error: 0.1},
			{Q0: 1, Q1: 0, Error: 0.2},
		},
	}); err == nil {
		t.Fatal("duplicate coupling accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		SingleQubit: []float64{0.1, math.NaN(), 0.1},
	}); err == nil {
		t.Fatal("NaN single-qubit rate accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		SingleQubit: []float64{0.1, 0.1, 0.1, 0.1},
	}); err == nil {
		t.Fatal("oversized single-qubit list accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		Readout: []float64{0.1, 1.0},
	}); err == nil {
		t.Fatal("readout rate of 1 accepted")
	}
	if _, err := dev.WithCalibration(&Calibration{
		IdlePerCycle: math.Inf(1),
	}); err == nil {
		t.Fatal("infinite idle-per-cycle rate accepted")
	}
}

func TestCalibrationZeroErrorStaysZero(t *testing.T) {
	// A coupling calibrated to exactly zero error must not be overwritten
	// by the median backfill: presence is tracked, not inferred from the
	// stored value.
	dev := LineDevice(3) // couplings (0,1),(1,2)
	cal := &Calibration{TwoQubit: []CouplingError{
		{Q0: 0, Q1: 1, Error: 0},
		{Q0: 1, Q1: 2, Error: 0.2},
	}}
	if _, err := dev.WithCalibration(cal); err != nil {
		t.Fatal(err)
	}
	prob := NewProblem(3)
	prob.AddInteraction(0, 1)
	res, err := Compile(dev, prob, Options{NoiseAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// The single interaction runs on the zero-error coupling; with no
	// single-qubit, readout, or idle noise configured the estimate is 1.
	if f := res.EstimatedFidelity(); f != 1 {
		t.Fatalf("zero-error coupling was backfilled: fidelity %v", f)
	}
}

func TestCalibrationMedianFill(t *testing.T) {
	dev := LineDevice(4) // couplings (0,1),(1,2),(2,3)
	cal := &Calibration{TwoQubit: []CouplingError{
		{Q0: 0, Q1: 1, Error: 0.02},
		{Q0: 1, Q1: 2, Error: 0.04},
	}}
	if _, err := dev.WithCalibration(cal); err != nil {
		t.Fatal(err)
	}
	// Coupling (2,3) missing: filled with the median (0.04 of [0.02,0.04]
	// -> index 1).
	prob := NewProblem(4)
	prob.AddInteraction(2, 3)
	res, err := Compile(dev, prob, Options{NoiseAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedFidelity() >= 1 {
		t.Fatal("median fill did not apply")
	}
}
